package resctrl

import (
	"fmt"
	"strings"

	"cachepart/internal/cat"
	"cachepart/internal/core"
)

// Script renders the shell commands that apply a partitioning policy
// on a real Linux machine through /sys/fs/resctrl — the bridge from
// the simulated integration to the paper's actual deployment. The
// engine would then move job-worker TIDs between the groups exactly as
// the simulated resctrl does.
func Script(p core.Policy) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("#!/bin/sh\n")
	sb.WriteString("# Cache-partitioning groups per Noll et al., ICDE 2018.\n")
	sb.WriteString("# Requires CAT hardware and kernel >= 4.10.\n")
	sb.WriteString("set -e\n")
	sb.WriteString("mount -t resctrl resctrl /sys/fs/resctrl 2>/dev/null || true\n\n")

	type group struct {
		name string
		mask cat.WayMask
		why  string
	}
	groups := []group{
		{"polluting", p.MaskFor(core.Polluting, core.Footprint{}),
			"scan-like jobs: no data reuse, restrict to avoid pollution"},
		{"join-small-bv", p.MaskFor(core.Depends, core.Footprint{BitVectorBytes: 1}),
			"joins whose bit vector is far from the LLC size"},
		{"join-large-bv", p.MaskFor(core.Depends,
			core.Footprint{BitVectorBytes: p.LLCBytes / 2}),
			"joins whose bit vector is comparable to the LLC"},
	}
	for _, g := range groups {
		fmt.Fprintf(&sb, "# %s\n", g.why)
		fmt.Fprintf(&sb, "mkdir -p /sys/fs/resctrl/%s\n", g.name)
		fmt.Fprintf(&sb, "echo '%s' > /sys/fs/resctrl/%s/schemata\n\n",
			FormatSchemata(g.mask), g.name)
	}
	sb.WriteString("# Sensitive jobs stay in the root group (full mask).\n")
	sb.WriteString("# Move a worker thread into a group with, e.g.:\n")
	sb.WriteString("#   echo <tid> > /sys/fs/resctrl/polluting/tasks\n")
	return sb.String(), nil
}
