// Package resctrl simulates the Linux kernel's resctrl pseudo
// filesystem (kernel 4.10+), the interface the paper uses to integrate
// CAT into the DBMS (Section V-C, Figure 8). Control groups are
// directories; each holds a `schemata` file ("L3:0=<hexmask>") and a
// `tasks` file listing thread ids. The engine moves job-worker TIDs
// between groups; on a context switch the (simulated) scheduler
// programs the core's CLOS from the task's group.
package resctrl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cachepart/internal/cat"
)

// RootGroup is the name of the default control group every task starts
// in; it maps to CLOS 0 with the full capacity mask.
const RootGroup = ""

// FS is a mounted resctrl filesystem bound to one socket's CAT
// registers. It is safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	regs    *cat.Registers
	groups  map[string]*group
	tasks   map[int]string // TID -> group name
	writes  int
	monitor Monitor // optional CMT/MBM backend
}

type group struct {
	name string
	clos int
	mask cat.WayMask
}

// Mount creates the filesystem over a register file. The root group is
// bound to CLOS 0 with the full mask, mirroring the kernel.
func Mount(regs *cat.Registers) *FS {
	fs := &FS{
		regs:   regs,
		groups: make(map[string]*group),
		tasks:  make(map[int]string),
	}
	fs.groups[RootGroup] = &group{
		name: RootGroup,
		clos: 0,
		mask: cat.FullMask(regs.NumWays()),
	}
	return fs
}

// MakeGroup creates a control group, allocating the next free CLOS.
// The new group starts with the full capacity mask, like `mkdir` under
// /sys/fs/resctrl.
func (fs *FS) MakeGroup(name string) error {
	if name == RootGroup || strings.ContainsAny(name, "/\x00") {
		return fmt.Errorf("resctrl: invalid group name %q", name)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.groups[name]; ok {
		return fmt.Errorf("resctrl: group %q exists", name)
	}
	used := make(map[int]bool, len(fs.groups))
	for _, g := range fs.groups {
		used[g.clos] = true
	}
	clos := -1
	for c := 0; c < fs.regs.NumCLOS(); c++ {
		if !used[c] {
			clos = c
			break
		}
	}
	if clos < 0 {
		return fmt.Errorf("resctrl: out of CLOS (%d in use)", len(fs.groups))
	}
	full := cat.FullMask(fs.regs.NumWays())
	if err := fs.regs.SetMask(clos, full); err != nil {
		return err
	}
	fs.groups[name] = &group{name: name, clos: clos, mask: full}
	return nil
}

// RemoveGroup deletes a control group; its tasks fall back to the root
// group, as in the kernel. The freed CLOS is restored to the full
// capacity mask — the kernel resets removed groups' schemata to the
// default, so a restrictive mask must not survive in the register file
// until the CLOS is reused. A reset of a narrowed mask counts as a
// state-changing write.
func (fs *FS) RemoveGroup(name string) error {
	if name == RootGroup {
		return fmt.Errorf("resctrl: cannot remove root group")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	g, ok := fs.groups[name]
	if !ok {
		return fmt.Errorf("resctrl: no group %q", name)
	}
	if full := cat.FullMask(fs.regs.NumWays()); g.mask != full {
		if err := fs.regs.SetMask(g.clos, full); err != nil {
			return err
		}
		fs.writes++
	}
	delete(fs.groups, name)
	for tid, gn := range fs.tasks {
		if gn == name {
			fs.tasks[tid] = RootGroup
		}
	}
	return nil
}

// Groups lists control group names, root first.
func (fs *FS) Groups() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.groups))
	for n := range fs.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteSchemata programs a group's L3 mask from the kernel's textual
// format, e.g. "L3:0=fffff".
func (fs *FS) WriteSchemata(groupName, schemata string) error {
	mask, err := ParseSchemata(schemata, fs.regs.NumWays())
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	g, ok := fs.groups[groupName]
	if !ok {
		return fmt.Errorf("resctrl: no group %q", groupName)
	}
	if err := fs.regs.SetMask(g.clos, mask); err != nil {
		return err
	}
	g.mask = mask
	fs.writes++
	return nil
}

// ReadSchemata renders a group's schemata file.
func (fs *FS) ReadSchemata(groupName string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	g, ok := fs.groups[groupName]
	if !ok {
		return "", fmt.Errorf("resctrl: no group %q", groupName)
	}
	return FormatSchemata(g.mask), nil
}

// Mask reports a group's current capacity mask.
func (fs *FS) Mask(groupName string) (cat.WayMask, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	g, ok := fs.groups[groupName]
	if !ok {
		return 0, fmt.Errorf("resctrl: no group %q", groupName)
	}
	return g.mask, nil
}

// MoveTask writes a TID into a group's tasks file. Moving a task to
// the group it is already in is a no-op that performs no register
// write, which is the redundant-write elision the paper implements in
// the engine (Section V-C).
func (fs *FS) MoveTask(tid int, groupName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.groups[groupName]; !ok {
		return fmt.Errorf("resctrl: no group %q", groupName)
	}
	if fs.tasks[tid] == groupName {
		return nil
	}
	fs.tasks[tid] = groupName
	fs.writes++
	return nil
}

// GroupOf reports the group a task belongs to (root if never moved).
func (fs *FS) GroupOf(tid int) string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tasks[tid]
}

// Tasks lists the TIDs in a group, sorted.
func (fs *FS) Tasks(groupName string) []int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []int
	for tid, g := range fs.tasks {
		if g == groupName {
			out = append(out, tid)
		}
	}
	sort.Ints(out)
	return out
}

// Schedule is the kernel scheduler hook: when task tid is dispatched on
// a core, the core's CLOS register is updated to the task's group, as
// the resctrl documentation describes for context switches.
func (fs *FS) Schedule(tid, core int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	g := fs.groups[fs.tasks[tid]]
	if g == nil {
		g = fs.groups[RootGroup]
	}
	if fs.regs.CLOSOf(core) == g.clos {
		return nil
	}
	return fs.regs.Associate(core, g.clos)
}

// Writes reports how many state-changing writes (schemata and task
// moves) the filesystem has absorbed, for overhead accounting.
func (fs *FS) Writes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// ParseSchemata parses the kernel's "L3:0=<hexmask>" format. Multiple
// whitespace-separated or semicolon-separated domain clauses are
// accepted, but only cache id 0 is meaningful on the single-socket
// machine the paper uses.
func ParseSchemata(schemata string, ways int) (cat.WayMask, error) {
	s := strings.TrimSpace(schemata)
	rest, ok := strings.CutPrefix(s, "L3:")
	if !ok {
		return 0, fmt.Errorf("resctrl: schemata %q must start with \"L3:\"", s)
	}
	var mask cat.WayMask
	found := false
	for _, clause := range strings.FieldsFunc(rest, func(r rune) bool { return r == ';' || r == ' ' }) {
		id, val, ok := strings.Cut(clause, "=")
		if !ok {
			return 0, fmt.Errorf("resctrl: malformed clause %q", clause)
		}
		if strings.TrimSpace(id) != "0" {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSpace(val), 16, 32)
		if err != nil {
			return 0, fmt.Errorf("resctrl: bad mask %q: %v", val, err)
		}
		mask = cat.WayMask(v)
		found = true
	}
	if !found {
		return 0, fmt.Errorf("resctrl: schemata %q has no clause for cache id 0", s)
	}
	if mask == 0 {
		return 0, fmt.Errorf("resctrl: empty mask")
	}
	if mask&^cat.FullMask(ways) != 0 {
		return 0, fmt.Errorf("resctrl: mask %v exceeds %d ways", mask, ways)
	}
	if !mask.Contiguous() {
		return 0, fmt.Errorf("resctrl: mask %v not contiguous", mask)
	}
	return mask, nil
}

// FormatSchemata renders a mask in the kernel's schemata format.
func FormatSchemata(mask cat.WayMask) string {
	return fmt.Sprintf("L3:0=%x", uint32(mask))
}
