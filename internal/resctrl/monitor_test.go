package resctrl

import (
	"testing"

	"cachepart/internal/cat"
)

// fakeMonitor returns deterministic counters per CLOS.
type fakeMonitor struct{}

func (fakeMonitor) LLCOccupancyOfCLOS(clos int) uint64 { return uint64(clos+1) * 1000 }
func (fakeMonitor) MemTrafficOfCLOS(clos int) uint64   { return uint64(clos+1) * 64 }

func TestReadMonData(t *testing.T) {
	regs, err := cat.NewRegisters(4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := Mount(regs)
	if _, err := fs.ReadMonData(RootGroup); err == nil {
		t.Error("monitoring without a backend should fail")
	}
	fs.AttachMonitor(fakeMonitor{})

	root, err := fs.ReadMonData(RootGroup)
	if err != nil {
		t.Fatal(err)
	}
	if root.LLCOccupancyBytes != 1000 || root.MemTotalBytes != 64 {
		t.Errorf("root mon data = %+v", root)
	}
	if err := fs.MakeGroup("g"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.ReadMonData("g")
	if err != nil {
		t.Fatal(err)
	}
	// Group "g" occupies CLOS 1.
	if g.LLCOccupancyBytes != 2000 {
		t.Errorf("group mon data = %+v", g)
	}
	if _, err := fs.ReadMonData("missing"); err == nil {
		t.Error("unknown group accepted")
	}
}
