package resctrl

// MonDelta is one monitoring window's worth of telemetry for a control
// group: the instantaneous LLC occupancy and the DRAM traffic
// accumulated since the previous sample of the same group.
type MonDelta struct {
	// LLCOccupancyBytes mirrors llc_occupancy: an instantaneous
	// reading, not a delta.
	LLCOccupancyBytes uint64
	// MemBytesDelta is the growth of mbm_total_bytes over the window.
	MemBytesDelta uint64
}

// MonWindow converts the cumulative mbm_total_bytes counter into
// per-window deltas, the quantity a feedback controller actually
// consumes. The kernel's MBM files only ever grow (modulo hardware
// counter width); every consumer re-deriving "bytes since my last
// read" is the boilerplate this helper centralises.
//
// A MonWindow is driven from one control loop and is not safe for
// concurrent use; the underlying FS reads are.
type MonWindow struct {
	fs *FS
	// last holds the cumulative traffic reading per group at its
	// previous Sample. Accessed by key only, never iterated.
	last map[string]uint64
}

// NewMonWindow opens a monitoring window over a mounted filesystem.
func NewMonWindow(fs *FS) *MonWindow {
	return &MonWindow{fs: fs, last: make(map[string]uint64)}
}

// Sample reads a group's monitoring files and returns the delta since
// the previous Sample of that group. The first sample of a group
// measures from zero, matching counters that start at zero when
// monitoring begins. A cumulative reading below the remembered
// baseline means the counters were reset (the simulator zeroes them
// between runs; real hardware wraps): the window restarts from zero so
// a reset never produces a huge bogus delta.
func (w *MonWindow) Sample(group string) (MonDelta, error) {
	md, err := w.fs.ReadMonData(group)
	if err != nil {
		return MonDelta{}, err
	}
	prev := w.last[group]
	delta := md.MemTotalBytes - prev
	if md.MemTotalBytes < prev {
		delta = md.MemTotalBytes
	}
	w.last[group] = md.MemTotalBytes
	return MonDelta{
		LLCOccupancyBytes: md.LLCOccupancyBytes,
		MemBytesDelta:     delta,
	}, nil
}

// Reset forgets every baseline, so the next Sample of each group
// measures from zero again. Call it when the backing counters are
// known to have been zeroed.
func (w *MonWindow) Reset() {
	clear(w.last)
}
