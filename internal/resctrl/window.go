package resctrl

// MonDelta is one monitoring window's worth of telemetry for a control
// group: the instantaneous LLC occupancy and the DRAM traffic
// accumulated since the previous successful sample of the same group.
type MonDelta struct {
	// LLCOccupancyBytes mirrors llc_occupancy: an instantaneous
	// reading, not a delta.
	LLCOccupancyBytes uint64
	// MemBytesDelta is the growth of mbm_total_bytes since the previous
	// successful sample — over Gap+1 windows when samples were missed.
	MemBytesDelta uint64
	// Gap counts the consecutive failed Samples of this group
	// immediately before this one. A consumer deriving a rate must
	// divide the delta by Gap+1 window lengths, or the missed windows'
	// traffic is misread as one window's burst.
	Gap int
}

// MonReader is the slice of a control plane a monitoring window needs.
// Both *FS and a fault-injecting wrapper satisfy it (via Plane).
type MonReader interface {
	ReadMonData(groupName string) (MonData, error)
}

// MonWindow converts the cumulative mbm_total_bytes counter into
// per-window deltas, the quantity a feedback controller actually
// consumes. The kernel's MBM files only ever grow (modulo hardware
// counter width); every consumer re-deriving "bytes since my last
// read" is the boilerplate this helper centralises.
//
// Failed reads — the kernel's "Unavailable"/"Error" files — are
// *skipped*, not zero-filled: the remembered baseline survives the gap,
// so the first successful sample after it yields the true accumulated
// delta (flagged with MonDelta.Gap) instead of a bogus zero followed by
// a bogus burst.
//
// A MonWindow is driven from one control loop and is not safe for
// concurrent use; the underlying filesystem reads are.
type MonWindow struct {
	fs MonReader
	// last holds the cumulative traffic reading per group at its
	// previous successful Sample. Accessed by key only, never iterated.
	last map[string]uint64
	// gaps counts consecutive failed Samples per group since the last
	// successful one. Accessed by key only, never iterated.
	gaps map[string]int
}

// NewMonWindow opens a monitoring window over a control plane.
func NewMonWindow(fs MonReader) *MonWindow {
	return &MonWindow{fs: fs, last: make(map[string]uint64), gaps: make(map[string]int)}
}

// Sample reads a group's monitoring files and returns the delta since
// the previous successful Sample of that group. The first sample of a
// group measures from zero, matching counters that start at zero when
// monitoring begins. A cumulative reading below the remembered
// baseline means the counters were reset (the simulator zeroes them
// between runs; real hardware wraps): the window restarts from zero so
// a reset never produces a huge bogus delta. A failed read leaves the
// baseline untouched and counts toward the next success's Gap.
func (w *MonWindow) Sample(group string) (MonDelta, error) {
	md, err := w.fs.ReadMonData(group)
	if err != nil {
		w.gaps[group]++
		return MonDelta{}, err
	}
	gap := w.gaps[group]
	w.gaps[group] = 0
	prev := w.last[group]
	delta := md.MemTotalBytes - prev
	if md.MemTotalBytes < prev {
		delta = md.MemTotalBytes
	}
	w.last[group] = md.MemTotalBytes
	return MonDelta{
		LLCOccupancyBytes: md.LLCOccupancyBytes,
		MemBytesDelta:     delta,
		Gap:               gap,
	}, nil
}

// Gaps reports the consecutive failed Samples of a group since its last
// successful one — the Gap the next successful Sample will carry.
func (w *MonWindow) Gaps(group string) int { return w.gaps[group] }

// Reset forgets every baseline and pending gap, so the next Sample of
// each group measures from zero again. Call it when the backing
// counters are known to have been zeroed.
func (w *MonWindow) Reset() {
	clear(w.last)
	clear(w.gaps)
}
