package resctrl

import (
	"testing"

	"cachepart/internal/cat"
)

// settableMonitor lets a test advance the counters between samples.
type settableMonitor struct {
	occ     map[int]uint64
	traffic map[int]uint64
}

func (m *settableMonitor) LLCOccupancyOfCLOS(clos int) uint64 { return m.occ[clos] }
func (m *settableMonitor) MemTrafficOfCLOS(clos int) uint64   { return m.traffic[clos] }

func TestMonWindowDeltas(t *testing.T) {
	regs, err := cat.NewRegisters(4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := Mount(regs)
	mon := &settableMonitor{occ: map[int]uint64{}, traffic: map[int]uint64{}}
	fs.AttachMonitor(mon)
	if err := fs.MakeGroup("g"); err != nil {
		t.Fatal(err)
	}
	// Group "g" is CLOS 1.
	w := NewMonWindow(fs)

	mon.occ[1] = 4096
	mon.traffic[1] = 1000
	d, err := w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.LLCOccupancyBytes != 4096 || d.MemBytesDelta != 1000 {
		t.Errorf("first sample = %+v, want occupancy 4096, delta 1000", d)
	}

	// The cumulative counter grows; the delta is only the growth, the
	// occupancy stays instantaneous.
	mon.occ[1] = 2048
	mon.traffic[1] = 1600
	d, err = w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.LLCOccupancyBytes != 2048 || d.MemBytesDelta != 600 {
		t.Errorf("second sample = %+v, want occupancy 2048, delta 600", d)
	}

	// No traffic between samples: zero delta.
	d, err = w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBytesDelta != 0 {
		t.Errorf("quiescent sample delta = %d, want 0", d.MemBytesDelta)
	}

	// Counter reset (machine stats zeroed between runs): the window
	// restarts from zero instead of underflowing.
	mon.traffic[1] = 200
	d, err = w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBytesDelta != 200 {
		t.Errorf("post-reset delta = %d, want 200", d.MemBytesDelta)
	}

	// Reset forgets the baseline: the next delta measures from zero.
	mon.traffic[1] = 500
	w.Reset()
	d, err = w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBytesDelta != 500 {
		t.Errorf("post-Reset delta = %d, want 500", d.MemBytesDelta)
	}
}

func TestMonWindowIndependentGroups(t *testing.T) {
	regs, err := cat.NewRegisters(4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := Mount(regs)
	mon := &settableMonitor{occ: map[int]uint64{}, traffic: map[int]uint64{}}
	fs.AttachMonitor(mon)
	if err := fs.MakeGroup("a"); err != nil { // CLOS 1
		t.Fatal(err)
	}
	if err := fs.MakeGroup("b"); err != nil { // CLOS 2
		t.Fatal(err)
	}
	w := NewMonWindow(fs)
	mon.traffic[1] = 100
	mon.traffic[2] = 1000
	if _, err := w.Sample("a"); err != nil {
		t.Fatal(err)
	}
	mon.traffic[1] = 150
	mon.traffic[2] = 1500
	da, err := w.Sample("a")
	if err != nil {
		t.Fatal(err)
	}
	db, err := w.Sample("b")
	if err != nil {
		t.Fatal(err)
	}
	if da.MemBytesDelta != 50 {
		t.Errorf("group a delta = %d, want 50", da.MemBytesDelta)
	}
	// b was never sampled before, so its first delta measures from zero.
	if db.MemBytesDelta != 1500 {
		t.Errorf("group b delta = %d, want 1500", db.MemBytesDelta)
	}
}

func TestMonWindowErrors(t *testing.T) {
	regs, err := cat.NewRegisters(2, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs := Mount(regs)
	w := NewMonWindow(fs)
	if _, err := w.Sample(RootGroup); err == nil {
		t.Error("sampling without a monitor should fail")
	}
	fs.AttachMonitor(&settableMonitor{occ: map[int]uint64{}, traffic: map[int]uint64{}})
	if _, err := w.Sample("missing"); err == nil {
		t.Error("sampling an unknown group should fail")
	}
}
