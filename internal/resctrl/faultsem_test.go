package resctrl

import (
	"errors"
	"testing"

	"cachepart/internal/cat"
)

// TestRemoveGroupResetsMask pins the freed-CLOS invariant: deleting a
// group returns its class of service to the allocator with the full
// mask, so a later group reusing the CLOS does not inherit a stale
// confinement. The reset is a real register write and counts as one.
func TestRemoveGroupResetsMask(t *testing.T) {
	fs, regs := mountTest(t)
	if err := fs.MakeGroup("g"); err != nil { // CLOS 1
		t.Fatal(err)
	}
	if err := fs.WriteSchemata("g", "L3:0=3"); err != nil {
		t.Fatal(err)
	}
	writes := fs.Writes()
	if err := fs.RemoveGroup("g"); err != nil {
		t.Fatal(err)
	}
	if got := regs.Mask(1); got != cat.FullMask(20) {
		t.Errorf("freed CLOS 1 mask = %v, want full", got)
	}
	if got := fs.Writes(); got != writes+1 {
		t.Errorf("Writes() after removal = %d, want %d (reset counted)", got, writes+1)
	}

	// A group removed with the full mask still in place needs no
	// reset write.
	if err := fs.MakeGroup("h"); err != nil {
		t.Fatal(err)
	}
	writes = fs.Writes()
	if err := fs.RemoveGroup("h"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Writes(); got != writes {
		t.Errorf("removing an unconfined group wrote %d times", got-writes)
	}
}

// TestMonWindowGapSkipsNotZeroFills is the telemetry-gap contract: a
// failed sample must not move the baseline, so the first success after
// an outage reports the whole spanned delta with the gap length —
// rather than a zero-filled or corrupted window.
func TestMonWindowGapSkipsNotZeroFills(t *testing.T) {
	regs, err := cat.NewRegisters(4, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs := Mount(regs)
	mon := &settableMonitor{occ: map[int]uint64{}, traffic: map[int]uint64{}}
	fs.AttachMonitor(mon)
	if err := fs.MakeGroup("g"); err != nil { // CLOS 1
		t.Fatal(err)
	}
	w := NewMonWindow(fs)

	mon.traffic[1] = 1000
	if _, err := w.Sample("g"); err != nil {
		t.Fatal(err)
	}

	// Outage: two sampling attempts fail mid-window while traffic
	// continues. Detaching the monitor is the scripted "Unavailable".
	fs.AttachMonitor(nil)
	for i := 0; i < 2; i++ {
		mon.traffic[1] += 300
		if _, err := w.Sample("g"); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("gap sample %d error = %v, want ErrUnavailable", i, err)
		}
	}
	if got := w.Gaps("g"); got != 2 {
		t.Errorf("Gaps(g) = %d, want 2", got)
	}

	// Recovery: the delta spans the gap — 600 unobserved plus 100 new
	// bytes against the pre-outage baseline of 1000, not against a
	// zero-filled or advanced baseline.
	fs.AttachMonitor(mon)
	mon.traffic[1] += 100
	d, err := w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBytesDelta != 700 {
		t.Errorf("post-gap delta = %d, want 700 (baseline held across gap)", d.MemBytesDelta)
	}
	if d.Gap != 2 {
		t.Errorf("post-gap Gap = %d, want 2", d.Gap)
	}
	if got := w.Gaps("g"); got != 0 {
		t.Errorf("Gaps(g) after recovery = %d, want 0", got)
	}

	// The next sample is an ordinary one-epoch window again.
	mon.traffic[1] += 50
	d, err = w.Sample("g")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemBytesDelta != 50 || d.Gap != 0 {
		t.Errorf("steady sample after recovery = %+v, want delta 50, gap 0", d)
	}
}

// TestMonitorSentinelsDistinguishFaults pins the two failure shapes of
// a real mon_data read: "Unavailable" (RMID not yet tracked —
// transient) and "Error" (broken domain counter — sticky), both
// distinguishable with errors.Is.
func TestMonitorSentinelsDistinguishFaults(t *testing.T) {
	fs, _ := mountTest(t)
	_, err := fs.ReadMonData(RootGroup)
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("detached-monitor read error = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, ErrCounter) {
		t.Error("detached-monitor read reports a counter error")
	}
	if errors.Is(ErrCounter, ErrUnavailable) {
		t.Error("sentinels must be distinct")
	}
}
