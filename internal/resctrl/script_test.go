package resctrl

import (
	"strings"
	"testing"

	"cachepart/internal/core"
)

func TestScriptRendersPaperScheme(t *testing.T) {
	p := core.DefaultPolicy(55<<20, 20)
	p.Enabled = true
	s, err := Script(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mount -t resctrl",
		"mkdir -p /sys/fs/resctrl/polluting",
		"echo 'L3:0=3' > /sys/fs/resctrl/polluting/schemata",
		"echo 'L3:0=3' > /sys/fs/resctrl/join-small-bv/schemata",
		"echo 'L3:0=fff' > /sys/fs/resctrl/join-large-bv/schemata",
		"tasks",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q:\n%s", want, s)
		}
	}
}

func TestScriptRejectsInvalidPolicy(t *testing.T) {
	var p core.Policy
	if _, err := Script(p); err == nil {
		t.Error("invalid policy accepted")
	}
}
