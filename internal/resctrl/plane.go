package resctrl

import "cachepart/internal/cat"

// Plane is the control-plane surface of a resctrl mount: everything the
// engine and an online controller do to groups, schemata, tasks and
// monitoring files. *FS implements it directly; internal/fault wraps
// one Plane in another to inject the failures a real kernel produces
// (EBUSY on schemata writes, ENOSPC when CLOSes run out, Unavailable
// monitoring reads), so the layers above are written against the
// interface rather than the concrete filesystem.
//
// Read-only calls (Mask, ReadSchemata, GroupOf, Tasks, Groups, Writes)
// are part of the interface but are never fault-injected: the kernel's
// failure modes live on the write paths and the monitoring files.
type Plane interface {
	// MakeGroup creates a control group, allocating a CLOS (mkdir).
	MakeGroup(name string) error
	// RemoveGroup deletes a group; its tasks fall back to root (rmdir).
	RemoveGroup(name string) error
	// Groups lists control group names, root first.
	Groups() []string
	// WriteSchemata programs a group's L3 mask ("L3:0=<hexmask>").
	WriteSchemata(groupName, schemata string) error
	// ReadSchemata renders a group's schemata file.
	ReadSchemata(groupName string) (string, error)
	// Mask reports a group's current capacity mask.
	Mask(groupName string) (cat.WayMask, error)
	// MoveTask writes a TID into a group's tasks file.
	MoveTask(tid int, groupName string) error
	// GroupOf reports the group a task belongs to.
	GroupOf(tid int) string
	// Tasks lists the TIDs in a group, sorted.
	Tasks(groupName string) []int
	// Schedule programs a core's CLOS from its task's group (the
	// context-switch hook).
	Schedule(tid, core int) error
	// Writes counts the state-changing writes absorbed so far.
	Writes() int
	// ReadMonData reads a group's CMT/MBM monitoring files.
	ReadMonData(groupName string) (MonData, error)
}

var _ Plane = (*FS)(nil)
