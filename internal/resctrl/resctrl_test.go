package resctrl

import (
	"strings"
	"testing"

	"cachepart/internal/cat"
)

func mountTest(t *testing.T) (*FS, *cat.Registers) {
	t.Helper()
	regs, err := cat.NewRegisters(8, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Mount(regs), regs
}

func TestMountRootGroup(t *testing.T) {
	fs, regs := mountTest(t)
	groups := fs.Groups()
	if len(groups) != 1 || groups[0] != RootGroup {
		t.Fatalf("groups = %v, want only root", groups)
	}
	m, err := fs.Mask(RootGroup)
	if err != nil || m != cat.FullMask(20) {
		t.Errorf("root mask = %v (%v), want full", m, err)
	}
	if regs.MaskOf(0) != cat.FullMask(20) {
		t.Error("cores should start with full mask")
	}
}

func TestMakeGroupAllocatesCLOS(t *testing.T) {
	fs, _ := mountTest(t)
	for _, n := range []string{"polluting", "sensitive", "join"} {
		if err := fs.MakeGroup(n); err != nil {
			t.Fatalf("MakeGroup(%q): %v", n, err)
		}
	}
	// 4 CLOS total, root uses one, three groups fill the rest.
	if err := fs.MakeGroup("overflow"); err == nil {
		t.Error("expected CLOS exhaustion")
	}
	if err := fs.MakeGroup("polluting"); err == nil {
		t.Error("duplicate group should fail")
	}
	if err := fs.MakeGroup(""); err == nil {
		t.Error("empty name should fail")
	}
	if err := fs.MakeGroup("a/b"); err == nil {
		t.Error("slash in name should fail")
	}
}

func TestWriteSchemataProgramsMask(t *testing.T) {
	fs, regs := mountTest(t)
	if err := fs.MakeGroup("polluting"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteSchemata("polluting", "L3:0=3"); err != nil {
		t.Fatal(err)
	}
	m, _ := fs.Mask("polluting")
	if m != 0x3 {
		t.Errorf("mask = %v, want 0x3", m)
	}
	// Scheduling a task from that group programs the core register.
	if err := fs.MoveTask(101, "polluting"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Schedule(101, 5); err != nil {
		t.Fatal(err)
	}
	if got := regs.MaskOf(5); got != 0x3 {
		t.Errorf("core 5 mask = %v, want 0x3", got)
	}
	// A root task scheduled on the same core restores the full mask.
	if err := fs.Schedule(999, 5); err != nil {
		t.Fatal(err)
	}
	if got := regs.MaskOf(5); got != cat.FullMask(20) {
		t.Errorf("core 5 mask after root task = %v, want full", got)
	}
}

func TestReadSchemataRoundTrip(t *testing.T) {
	fs, _ := mountTest(t)
	_ = fs.MakeGroup("g")
	for _, mask := range []string{"3", "fff", "fffff"} {
		if err := fs.WriteSchemata("g", "L3:0="+mask); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadSchemata("g")
		if err != nil || got != "L3:0="+mask {
			t.Errorf("round trip %q -> %q (%v)", mask, got, err)
		}
	}
}

func TestMoveTaskElidesRedundantWrites(t *testing.T) {
	fs, _ := mountTest(t)
	_ = fs.MakeGroup("g")
	if err := fs.MoveTask(7, "g"); err != nil {
		t.Fatal(err)
	}
	w := fs.Writes()
	for i := 0; i < 10; i++ {
		if err := fs.MoveTask(7, "g"); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Writes() != w {
		t.Errorf("redundant MoveTask performed %d extra writes", fs.Writes()-w)
	}
	if g := fs.GroupOf(7); g != "g" {
		t.Errorf("GroupOf = %q", g)
	}
	if tasks := fs.Tasks("g"); len(tasks) != 1 || tasks[0] != 7 {
		t.Errorf("Tasks = %v", tasks)
	}
}

func TestRemoveGroupReparentsTasks(t *testing.T) {
	fs, _ := mountTest(t)
	_ = fs.MakeGroup("g")
	_ = fs.MoveTask(1, "g")
	if err := fs.RemoveGroup("g"); err != nil {
		t.Fatal(err)
	}
	if g := fs.GroupOf(1); g != RootGroup {
		t.Errorf("task fell into %q, want root", g)
	}
	if err := fs.RemoveGroup(RootGroup); err == nil {
		t.Error("removing root should fail")
	}
	if err := fs.RemoveGroup("gone"); err == nil {
		t.Error("removing unknown group should fail")
	}
}

func TestScheduleElidesSameCLOS(t *testing.T) {
	fs, regs := mountTest(t)
	_ = fs.MakeGroup("g")
	_ = fs.MoveTask(1, "g")
	_ = fs.Schedule(1, 0)
	w := regs.Writes()
	// Same task, same core, same CLOS: no register write.
	_ = fs.Schedule(1, 0)
	if regs.Writes() != w {
		t.Error("redundant Schedule wrote registers")
	}
}

func TestParseSchemata(t *testing.T) {
	good := map[string]cat.WayMask{
		"L3:0=fffff":     0xfffff,
		"L3:0=3":         0x3,
		" L3:0=fff ":     0xfff,
		"L3:0=3;1=fffff": 0x3, // second socket ignored
		"L3:1=fffff 0=3": 0x3,
		"L3:0=FFF":       0xfff,
	}
	for in, want := range good {
		got, err := ParseSchemata(in, 20)
		if err != nil || got != want {
			t.Errorf("ParseSchemata(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	bad := []string{
		"", "L2:0=3", "L3:0=", "L3:0=zz", "L3:1=3", "L3:0=0",
		"L3:0=5",      // not contiguous
		"L3:0=1fffff", // beyond 20 ways
		"L3:0",        // no '='
	}
	for _, in := range bad {
		if _, err := ParseSchemata(in, 20); err == nil {
			t.Errorf("ParseSchemata(%q) should fail", in)
		}
	}
}

func TestWriteSchemataErrors(t *testing.T) {
	fs, _ := mountTest(t)
	if err := fs.WriteSchemata("nope", "L3:0=3"); err == nil {
		t.Error("unknown group should fail")
	}
	if err := fs.WriteSchemata(RootGroup, "garbage"); err == nil {
		t.Error("garbage schemata should fail")
	}
	if err := fs.MoveTask(1, "nope"); err == nil {
		t.Error("MoveTask to unknown group should fail")
	}
	if _, err := fs.ReadSchemata("nope"); err == nil {
		t.Error("ReadSchemata of unknown group should fail")
	}
	if _, err := fs.Mask("nope"); err == nil {
		t.Error("Mask of unknown group should fail")
	}
}

func TestFormatSchemata(t *testing.T) {
	if got := FormatSchemata(0x3); got != "L3:0=3" {
		t.Errorf("FormatSchemata = %q", got)
	}
	if !strings.HasPrefix(FormatSchemata(0xfffff), "L3:0=") {
		t.Error("format prefix wrong")
	}
}
