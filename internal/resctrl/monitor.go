package resctrl

import (
	"errors"
	"fmt"
)

// Monitor is the hardware side of resctrl monitoring: per-CLOS cache
// occupancy and memory traffic, as provided by Intel's Cache
// Monitoring Technology and Memory Bandwidth Monitoring. The
// simulator's Machine implements it.
type Monitor interface {
	LLCOccupancyOfCLOS(clos int) uint64
	MemTrafficOfCLOS(clos int) uint64
}

// The kernel's mon_data files do not always hold a number: a file reads
// the literal string "Unavailable" while the group's RMID has no stable
// counts (freshly allocated, or parked in limbo until its occupancy
// drains), and "Error" when the domain's counter hardware is broken.
// ReadMonData surfaces the two as wrapped sentinel errors so consumers
// can tell a transient gap (retry next window) from a dead counter.
var (
	// ErrUnavailable mirrors a mon_data file reading "Unavailable":
	// the counts are temporarily missing but the next read may succeed.
	ErrUnavailable = errors.New("resctrl: monitoring data Unavailable")
	// ErrCounter mirrors a mon_data file reading "Error": the domain's
	// counter is unreadable and stays so.
	ErrCounter = errors.New("resctrl: monitoring data Error")
)

// MonData mirrors a monitoring group's mon_data directory.
type MonData struct {
	// LLCOccupancyBytes is the llc_occupancy file: bytes of LLC
	// currently attributed to the group.
	LLCOccupancyBytes uint64
	// MemTotalBytes is the mbm_total_bytes file: cumulative DRAM
	// traffic attributed to the group.
	MemTotalBytes uint64
}

// AttachMonitor connects the filesystem to the hardware counters.
// Attaching nil detaches, after which reads fail with ErrUnavailable —
// the hook tests use to script telemetry gaps.
func (fs *FS) AttachMonitor(mon Monitor) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.monitor = mon
}

// ReadMonData reads a control group's monitoring data. Without an
// attached monitor it fails with an error wrapping ErrUnavailable, the
// same shape as an RMID whose counts have not materialised.
func (fs *FS) ReadMonData(groupName string) (MonData, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.monitor == nil {
		return MonData{}, fmt.Errorf("resctrl: monitoring not available: %w", ErrUnavailable)
	}
	g, ok := fs.groups[groupName]
	if !ok {
		return MonData{}, fmt.Errorf("resctrl: no group %q", groupName)
	}
	return MonData{
		LLCOccupancyBytes: fs.monitor.LLCOccupancyOfCLOS(g.clos),
		MemTotalBytes:     fs.monitor.MemTrafficOfCLOS(g.clos),
	}, nil
}
