package resctrl

import "fmt"

// Monitor is the hardware side of resctrl monitoring: per-CLOS cache
// occupancy and memory traffic, as provided by Intel's Cache
// Monitoring Technology and Memory Bandwidth Monitoring. The
// simulator's Machine implements it.
type Monitor interface {
	LLCOccupancyOfCLOS(clos int) uint64
	MemTrafficOfCLOS(clos int) uint64
}

// MonData mirrors a monitoring group's mon_data directory.
type MonData struct {
	// LLCOccupancyBytes is the llc_occupancy file: bytes of LLC
	// currently attributed to the group.
	LLCOccupancyBytes uint64
	// MemTotalBytes is the mbm_total_bytes file: cumulative DRAM
	// traffic attributed to the group.
	MemTotalBytes uint64
}

// AttachMonitor connects the filesystem to the hardware counters.
func (fs *FS) AttachMonitor(mon Monitor) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.monitor = mon
}

// ReadMonData reads a control group's monitoring data. It fails when
// no monitor is attached (monitoring not supported by the "hardware").
func (fs *FS) ReadMonData(groupName string) (MonData, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.monitor == nil {
		return MonData{}, fmt.Errorf("resctrl: monitoring not available")
	}
	g, ok := fs.groups[groupName]
	if !ok {
		return MonData{}, fmt.Errorf("resctrl: no group %q", groupName)
	}
	return MonData{
		LLCOccupancyBytes: fs.monitor.LLCOccupancyOfCLOS(g.clos),
		MemTotalBytes:     fs.monitor.MemTrafficOfCLOS(g.clos),
	}, nil
}
