package column

import (
	"math/rand"
	"testing"

	"cachepart/internal/memory"
)

func BenchmarkPackedVectorSet(b *testing.B) {
	space := memory.NewSpace()
	v, _ := NewPackedVector(space, "b", 1<<20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Set(i&(1<<20-1), uint32(i)&0xFFFFF)
	}
}

func BenchmarkPackedVectorGet(b *testing.B) {
	space := memory.NewSpace()
	v, _ := NewPackedVector(space, "b", 1<<20, 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < v.Len(); i++ {
		v.Set(i, rng.Uint32()&0xFFFFF)
	}
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += v.Get(i & (1<<20 - 1))
	}
	_ = sink
}

func BenchmarkCountInRange(b *testing.B) {
	space := memory.NewSpace()
	v, _ := NewPackedVector(space, "b", 1<<16, 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < v.Len(); i++ {
		v.Set(i, rng.Uint32()&0xFFFFF)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += v.CountInRange(0, v.Len(), 1000, 500_000)
	}
	_ = sink
}

func BenchmarkDictionaryLowerBound(b *testing.B) {
	space := memory.NewSpace()
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = int64(i) * 3
	}
	d, _ := NewDictionary(space, "b", vals, 4)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += d.LowerBound(int64(i) % (3 << 16))
	}
	_ = sink
}

func BenchmarkInvertedIndexLookup(b *testing.B) {
	space := memory.NewSpace()
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 10)
	}
	c, _ := EncodeDense(space, "b", vals, 0, 1<<10-1, 4)
	ix, _ := BuildInvertedIndex(space, c)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(ix.Lookup(int64(i) & (1<<10 - 1)))
	}
	_ = sink
}
