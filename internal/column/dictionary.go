// Package column implements the columnar storage layer of the engine:
// order-preserving dictionaries, n-bit-packed code vectors, columns,
// tables and inverted indexes — the data structures Section II of the
// paper identifies as performance-critical (dictionary, hash table,
// bit vector live in internal/exec).
//
// All structures hold their real data in Go slices and additionally
// occupy a region of the simulated address space, so operators can
// report the cache lines they touch.
package column

import (
	"fmt"
	"math/bits"
	"sort"

	"cachepart/internal/memory"
)

// Dictionary maps a column's domain values to a dense range of integer
// codes 0..N-1 in value order, so range predicates can be evaluated on
// codes directly (order-preserving encoding, Section II).
//
// A dictionary may be dense — representing the contiguous domain
// lo..lo+N-1 without materialising it — which is how the paper's
// generated data sets (values 1..N) are stored, or explicit with a
// sorted value slice.
type Dictionary struct {
	n         uint32
	dense     bool
	lo        int64   // dense only
	values    []int64 // explicit only, sorted ascending
	entrySize uint64
	region    memory.Region
}

// DefaultEntrySize is the bytes-per-entry of an integer dictionary:
// the paper's 10^6 distinct INTs make a 4 MiB dictionary, i.e. 4 B per
// entry.
const DefaultEntrySize = 4

// NewDenseDictionary builds a dictionary for the contiguous domain
// [lo, hi]. entrySize controls the simulated footprint per entry
// (DefaultEntrySize for INT columns; wider for NVARCHAR-like columns).
func NewDenseDictionary(space *memory.Space, name string, lo, hi int64, entrySize uint64) (*Dictionary, error) {
	if hi < lo {
		return nil, fmt.Errorf("column: dense dictionary range [%d,%d] empty", lo, hi)
	}
	n := uint64(hi-lo) + 1
	if n > 1<<32 {
		return nil, fmt.Errorf("column: dictionary of %d entries exceeds code space", n)
	}
	if entrySize == 0 {
		entrySize = DefaultEntrySize
	}
	d := &Dictionary{n: uint32(n), dense: true, lo: lo, entrySize: entrySize}
	d.region = space.Alloc(name+".dict", n*entrySize)
	return d, nil
}

// NewDictionary builds an explicit dictionary from distinct values,
// which need not be sorted.
func NewDictionary(space *memory.Space, name string, distinct []int64, entrySize uint64) (*Dictionary, error) {
	if len(distinct) == 0 {
		return nil, fmt.Errorf("column: empty dictionary")
	}
	if uint64(len(distinct)) > 1<<32 {
		return nil, fmt.Errorf("column: dictionary of %d entries exceeds code space", len(distinct))
	}
	if entrySize == 0 {
		entrySize = DefaultEntrySize
	}
	vals := make([]int64, len(distinct))
	copy(vals, distinct)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] {
			return nil, fmt.Errorf("column: duplicate dictionary value %d", vals[i])
		}
	}
	d := &Dictionary{n: uint32(len(vals)), values: vals, entrySize: entrySize}
	d.region = space.Alloc(name+".dict", uint64(len(vals))*entrySize)
	return d, nil
}

// Len reports the number of dictionary entries.
func (d *Dictionary) Len() int { return int(d.n) }

// Bytes reports the simulated dictionary size.
func (d *Dictionary) Bytes() uint64 { return uint64(d.n) * d.entrySize }

// EntrySize reports bytes per entry.
func (d *Dictionary) EntrySize() uint64 { return d.entrySize }

// Region exposes the simulated allocation.
func (d *Dictionary) Region() memory.Region { return d.region }

// Value decodes a code. Codes out of range panic: they indicate a
// corrupted vector, not a user error.
func (d *Dictionary) Value(code uint32) int64 {
	if code >= d.n {
		panic(fmt.Sprintf("column: code %d out of dictionary of %d", code, d.n))
	}
	if d.dense {
		return d.lo + int64(code)
	}
	return d.values[code]
}

// Addr returns the address of the first byte of a code's entry — the
// line an operator touches to decompress the value.
func (d *Dictionary) Addr(code uint32) memory.Addr {
	return d.region.Addr(uint64(code) * d.entrySize)
}

// CodeOf finds the exact code of a value.
func (d *Dictionary) CodeOf(value int64) (uint32, bool) {
	if d.dense {
		if value < d.lo || value >= d.lo+int64(d.n) {
			return 0, false
		}
		return uint32(value - d.lo), true
	}
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] >= value })
	if i < len(d.values) && d.values[i] == value {
		return uint32(i), true
	}
	return 0, false
}

// LowerBound returns the smallest code whose value is >= v, or Len()
// if none. Order preservation makes range predicates on codes exact.
func (d *Dictionary) LowerBound(v int64) uint32 {
	if d.dense {
		switch {
		case v <= d.lo:
			return 0
		case v > d.lo+int64(d.n-1):
			return d.n
		default:
			return uint32(v - d.lo)
		}
	}
	return uint32(sort.Search(len(d.values), func(i int) bool { return d.values[i] >= v }))
}

// CodeBits reports how many bits a packed code for this dictionary
// needs: ceil(log2(N)), at least 1.
func (d *Dictionary) CodeBits() uint {
	if d.n <= 1 {
		return 1
	}
	return uint(bits.Len32(d.n - 1))
}
