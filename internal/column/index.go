package column

import (
	"fmt"

	"cachepart/internal/memory"
)

// InvertedIndex maps each dictionary code of a column to the list of
// rows holding it. The paper's S/4HANA OLTP query probes the inverted
// indexes of five primary-key columns before projecting (Section VI-E).
//
// Simulated layout: a header array of 8 bytes per code (offset+count)
// followed by the concatenated posting lists of 4 bytes per row, which
// determines the cache lines a probe touches.
type InvertedIndex struct {
	col     *Column
	offsets []uint64 // per code: start of posting list in postings
	posts   []uint32 // row ids, grouped by code
	region  memory.Region
}

const (
	indexHeaderSize  = 8
	indexPostingSize = 4
)

// BuildInvertedIndex constructs the index for a column.
func BuildInvertedIndex(space *memory.Space, c *Column) (*InvertedIndex, error) {
	n := c.Rows()
	codes := c.Dict.Len()
	counts := make([]uint64, codes+1)
	for i := 0; i < n; i++ {
		counts[c.Codes.Get(i)+1]++
	}
	for i := 1; i <= codes; i++ {
		counts[i] += counts[i-1]
	}
	offsets := make([]uint64, codes+1)
	copy(offsets, counts)
	posts := make([]uint32, n)
	next := make([]uint64, codes)
	copy(next, counts[:codes])
	for i := 0; i < n; i++ {
		code := c.Codes.Get(i)
		posts[next[code]] = uint32(i)
		next[code]++
	}
	size := uint64(codes)*indexHeaderSize + uint64(n)*indexPostingSize
	idx := &InvertedIndex{
		col:     c,
		offsets: offsets,
		posts:   posts,
		region:  space.Alloc(c.Name+".ivx", size),
	}
	return idx, nil
}

// Column reports the indexed column.
func (ix *InvertedIndex) Column() *Column { return ix.col }

// Region exposes the simulated allocation.
func (ix *InvertedIndex) Region() memory.Region { return ix.region }

// Bytes reports the simulated index size.
func (ix *InvertedIndex) Bytes() uint64 { return ix.region.Size }

// Lookup returns the rows holding a value, or nil when the value is
// not in the dictionary.
func (ix *InvertedIndex) Lookup(value int64) []uint32 {
	code, ok := ix.col.Dict.CodeOf(value)
	if !ok {
		return nil
	}
	return ix.PostingsOf(code)
}

// PostingsOf returns the rows holding a code.
func (ix *InvertedIndex) PostingsOf(code uint32) []uint32 {
	if uint64(code) >= uint64(len(ix.offsets)-1) {
		panic(fmt.Sprintf("column: code %d out of index of %d", code, len(ix.offsets)-1))
	}
	return ix.posts[ix.offsets[code]:ix.offsets[code+1]]
}

// HeaderAddr is the address of a code's header entry — the first line
// a probe touches.
func (ix *InvertedIndex) HeaderAddr(code uint32) memory.Addr {
	return ix.region.Addr(uint64(code) * indexHeaderSize)
}

// PostingAddr is the address of the k-th posting of a code.
func (ix *InvertedIndex) PostingAddr(code uint32, k int) memory.Addr {
	codes := uint64(len(ix.offsets) - 1)
	off := codes*indexHeaderSize + (ix.offsets[code]+uint64(k))*indexPostingSize
	return ix.region.Addr(off)
}
