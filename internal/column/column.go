package column

import (
	"fmt"

	"cachepart/internal/memory"
)

// Column is a dictionary-encoded column: an ordered dictionary plus a
// bit-packed code vector.
type Column struct {
	Name  string
	Dict  *Dictionary
	Codes *PackedVector
}

// Encode builds a column from raw values, constructing an explicit
// dictionary from the distinct values. Intended for tests and small
// data; large generated data sets use EncodeDense.
func Encode(space *memory.Space, name string, values []int64, entrySize uint64) (*Column, error) {
	seen := make(map[int64]struct{}, len(values))
	distinct := make([]int64, 0, len(values))
	for _, v := range values {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			distinct = append(distinct, v)
		}
	}
	dict, err := NewDictionary(space, name, distinct, entrySize)
	if err != nil {
		return nil, err
	}
	return encodeWith(space, name, values, dict)
}

// EncodeDense builds a column over the contiguous domain [lo, hi]
// without materialising the dictionary values; every value must fall
// in the domain. This matches the paper's generated data (uniform
// integers 1..N).
func EncodeDense(space *memory.Space, name string, values []int64, lo, hi int64, entrySize uint64) (*Column, error) {
	dict, err := NewDenseDictionary(space, name, lo, hi, entrySize)
	if err != nil {
		return nil, err
	}
	return encodeWith(space, name, values, dict)
}

func encodeWith(space *memory.Space, name string, values []int64, dict *Dictionary) (*Column, error) {
	codes, err := NewPackedVector(space, name, len(values), dict.CodeBits())
	if err != nil {
		return nil, err
	}
	for i, v := range values {
		c, ok := dict.CodeOf(v)
		if !ok {
			return nil, fmt.Errorf("column: value %d outside dictionary of column %q", v, name)
		}
		codes.Set(i, c)
	}
	return &Column{Name: name, Dict: dict, Codes: codes}, nil
}

// Rows reports the row count.
func (c *Column) Rows() int { return c.Codes.Len() }

// Value decodes row i through the dictionary.
func (c *Column) Value(i int) int64 { return c.Dict.Value(c.Codes.Get(i)) }

// Footprint reports the simulated bytes of codes plus dictionary.
func (c *Column) Footprint() uint64 { return c.Codes.Bytes() + c.Dict.Bytes() }

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	columns []*Column
	byName  map[string]*Column
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, byName: make(map[string]*Column)}
}

// AddColumn attaches a column; all columns must have the same length.
func (t *Table) AddColumn(c *Column) error {
	if _, ok := t.byName[c.Name]; ok {
		return fmt.Errorf("column: table %q already has column %q", t.Name, c.Name)
	}
	if len(t.columns) > 0 && c.Rows() != t.Rows() {
		return fmt.Errorf("column: column %q has %d rows, table %q has %d",
			c.Name, c.Rows(), t.Name, t.Rows())
	}
	t.columns = append(t.columns, c)
	t.byName[c.Name] = c
	return nil
}

// Column fetches a column by name.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("column: table %q has no column %q", t.Name, name)
	}
	return c, nil
}

// MustColumn is Column for static query plans where absence is a bug.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Columns lists the columns in attachment order.
func (t *Table) Columns() []*Column { return t.columns }

// Rows reports the table's row count (0 when empty).
func (t *Table) Rows() int {
	if len(t.columns) == 0 {
		return 0
	}
	return t.columns[0].Rows()
}

// Footprint reports the simulated size of all columns.
func (t *Table) Footprint() uint64 {
	var total uint64
	for _, c := range t.columns {
		total += c.Footprint()
	}
	return total
}
