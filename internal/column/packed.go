package column

import (
	"fmt"

	"cachepart/internal/memory"
)

// PackedVector stores n codes of a fixed bit width contiguously, the
// compressed representation SAP HANA's column scan operates on directly
// (Section II / [7], [8]). Codes may straddle 64-bit word boundaries.
type PackedVector struct {
	bits   uint
	n      int
	words  []uint64
	region memory.Region
}

// NewPackedVector allocates a vector for n codes of the given width.
func NewPackedVector(space *memory.Space, name string, n int, bits uint) (*PackedVector, error) {
	if n < 0 {
		return nil, fmt.Errorf("column: negative length %d", n)
	}
	if bits == 0 || bits > 32 {
		return nil, fmt.Errorf("column: code width %d out of range [1,32]", bits)
	}
	totalBits := uint64(n) * uint64(bits)
	words := (totalBits + 63) / 64
	if words == 0 {
		words = 1
	}
	v := &PackedVector{
		bits:  bits,
		n:     n,
		words: make([]uint64, words),
	}
	v.region = space.Alloc(name+".codes", words*8)
	return v, nil
}

// Len reports the number of codes.
func (v *PackedVector) Len() int { return v.n }

// Bits reports the code width.
func (v *PackedVector) Bits() uint { return v.bits }

// Bytes reports the simulated (and real) storage size.
func (v *PackedVector) Bytes() uint64 { return uint64(len(v.words)) * 8 }

// Region exposes the simulated allocation.
func (v *PackedVector) Region() memory.Region { return v.region }

// Set stores a code at index i. Codes wider than the vector's width
// are rejected as corruption.
func (v *PackedVector) Set(i int, code uint32) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("column: index %d out of %d", i, v.n))
	}
	if v.bits < 32 && code >= 1<<v.bits {
		panic(fmt.Sprintf("column: code %d exceeds %d bits", code, v.bits))
	}
	bitPos := uint64(i) * uint64(v.bits)
	w, off := bitPos/64, bitPos%64
	mask := uint64(1)<<v.bits - 1
	if v.bits == 32 {
		mask = 1<<32 - 1
	}
	v.words[w] = v.words[w]&^(mask<<off) | uint64(code)<<off
	if off+uint64(v.bits) > 64 {
		spill := off + uint64(v.bits) - 64
		hiBits := uint64(code) >> (uint64(v.bits) - spill)
		hiMask := uint64(1)<<spill - 1
		v.words[w+1] = v.words[w+1]&^hiMask | hiBits
	}
}

// Get loads the code at index i.
func (v *PackedVector) Get(i int) uint32 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("column: index %d out of %d", i, v.n))
	}
	bitPos := uint64(i) * uint64(v.bits)
	w, off := bitPos/64, bitPos%64
	mask := uint64(1)<<v.bits - 1
	if v.bits == 32 {
		mask = 1<<32 - 1
	}
	val := v.words[w] >> off
	if off+uint64(v.bits) > 64 {
		val |= v.words[w+1] << (64 - off)
	}
	return uint32(val & mask)
}

// Addr returns the byte address holding the first bit of code i, the
// line a point access touches.
func (v *PackedVector) Addr(i int) memory.Addr {
	bitPos := uint64(i) * uint64(v.bits)
	return v.region.Addr(bitPos / 8 / 8 * 8) // word-aligned byte offset
}

// LineOfRow reports which cache line (0-based within the region) holds
// row i, so scans can detect line boundaries.
func (v *PackedVector) LineOfRow(i int) uint64 {
	bitPos := uint64(i) * uint64(v.bits)
	return bitPos / 8 / memory.LineSize
}

// RowsPerLine reports how many codes fit in one cache line on average;
// at 20 bits that is 25.6, matching the paper's SIMD scan density.
func (v *PackedVector) RowsPerLine() float64 {
	return float64(memory.LineSize*8) / float64(v.bits)
}

// CountInRange counts codes c with lo <= c < hi over rows [from, to),
// the kernel of the compressed column scan. It is implemented on the
// packed words directly (word-at-a-time in spirit, scalar in letter).
func (v *PackedVector) CountInRange(from, to int, lo, hi uint32) int64 {
	var cnt int64
	for i := from; i < to; i++ {
		c := v.Get(i)
		if c >= lo && c < hi {
			cnt++
		}
	}
	return cnt
}
