package column

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachepart/internal/memory"
)

func TestDenseDictionary(t *testing.T) {
	s := memory.NewSpace()
	d, err := NewDenseDictionary(s, "x", 1, 1_000_000, DefaultEntrySize)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1_000_000 {
		t.Errorf("Len = %d", d.Len())
	}
	// The paper: 10^6 distinct INTs -> 4 MiB dictionary.
	if got := d.Bytes(); got != 4_000_000 {
		t.Errorf("Bytes = %d, want 4000000", got)
	}
	if got := d.Value(0); got != 1 {
		t.Errorf("Value(0) = %d", got)
	}
	if got := d.Value(999_999); got != 1_000_000 {
		t.Errorf("Value(last) = %d", got)
	}
	if c, ok := d.CodeOf(500_000); !ok || c != 499_999 {
		t.Errorf("CodeOf = %d, %v", c, ok)
	}
	if _, ok := d.CodeOf(0); ok {
		t.Error("CodeOf below range should fail")
	}
	if _, ok := d.CodeOf(1_000_001); ok {
		t.Error("CodeOf above range should fail")
	}
	// 10^6 values need 20 bits, as in the paper.
	if got := d.CodeBits(); got != 20 {
		t.Errorf("CodeBits = %d, want 20", got)
	}
}

func TestDenseDictionaryLowerBound(t *testing.T) {
	s := memory.NewSpace()
	d, _ := NewDenseDictionary(s, "x", 10, 19, 4)
	cases := []struct {
		v    int64
		want uint32
	}{
		{5, 0}, {10, 0}, {15, 5}, {19, 9}, {20, 10}, {100, 10},
	}
	for _, c := range cases {
		if got := d.LowerBound(c.v); got != c.want {
			t.Errorf("LowerBound(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestExplicitDictionary(t *testing.T) {
	s := memory.NewSpace()
	d, err := NewDictionary(s, "x", []int64{30, 10, 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Order-preserving: codes sorted by value.
	for code, want := range []int64{10, 20, 30} {
		if got := d.Value(uint32(code)); got != want {
			t.Errorf("Value(%d) = %d, want %d", code, got, want)
		}
	}
	if c, ok := d.CodeOf(20); !ok || c != 1 {
		t.Errorf("CodeOf(20) = %d, %v", c, ok)
	}
	if _, ok := d.CodeOf(15); ok {
		t.Error("CodeOf missing value should fail")
	}
	if got := d.LowerBound(15); got != 1 {
		t.Errorf("LowerBound(15) = %d", got)
	}
	if got := d.LowerBound(31); got != 3 {
		t.Errorf("LowerBound(31) = %d", got)
	}
}

func TestDictionaryErrors(t *testing.T) {
	s := memory.NewSpace()
	if _, err := NewDenseDictionary(s, "x", 5, 4, 4); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewDictionary(s, "x", nil, 4); err == nil {
		t.Error("empty dictionary should fail")
	}
	if _, err := NewDictionary(s, "x", []int64{1, 1}, 4); err == nil {
		t.Error("duplicate values should fail")
	}
}

func TestDictionaryAddrWithinRegion(t *testing.T) {
	s := memory.NewSpace()
	d, _ := NewDenseDictionary(s, "x", 1, 100, 4)
	for code := uint32(0); code < 100; code += 13 {
		if !d.Region().Contains(d.Addr(code)) {
			t.Errorf("Addr(%d) outside region", code)
		}
	}
}

func TestDictionaryCodeBitsEdge(t *testing.T) {
	s := memory.NewSpace()
	one, _ := NewDenseDictionary(s, "x", 7, 7, 4)
	if got := one.CodeBits(); got != 1 {
		t.Errorf("single-entry dictionary CodeBits = %d, want 1", got)
	}
	two, _ := NewDenseDictionary(s, "y", 0, 1, 4)
	if got := two.CodeBits(); got != 1 {
		t.Errorf("2-entry CodeBits = %d, want 1", got)
	}
	three, _ := NewDenseDictionary(s, "z", 0, 2, 4)
	if got := three.CodeBits(); got != 2 {
		t.Errorf("3-entry CodeBits = %d, want 2", got)
	}
}

func TestPackedVectorRoundTrip(t *testing.T) {
	for _, bitw := range []uint{1, 3, 7, 20, 31, 32} {
		s := memory.NewSpace()
		n := 1000
		v, err := NewPackedVector(s, "p", n, bitw)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(bitw)))
		want := make([]uint32, n)
		var max uint32 = 1<<bitw - 1
		if bitw == 32 {
			max = ^uint32(0)
		}
		for i := range want {
			want[i] = rng.Uint32() & max
			v.Set(i, want[i])
		}
		for i := range want {
			if got := v.Get(i); got != want[i] {
				t.Fatalf("bits=%d: Get(%d) = %d, want %d", bitw, i, got, want[i])
			}
		}
	}
}

func TestPackedVectorOverwrite(t *testing.T) {
	s := memory.NewSpace()
	v, _ := NewPackedVector(s, "p", 10, 20)
	v.Set(3, 0xABCDE)
	v.Set(3, 0x12345)
	if got := v.Get(3); got != 0x12345 {
		t.Errorf("after overwrite Get = %#x", got)
	}
	// Neighbours untouched.
	if v.Get(2) != 0 || v.Get(4) != 0 {
		t.Error("overwrite leaked into neighbours")
	}
}

func TestPackedVectorBounds(t *testing.T) {
	s := memory.NewSpace()
	v, _ := NewPackedVector(s, "p", 4, 8)
	for _, f := range []func(){
		func() { v.Get(-1) },
		func() { v.Get(4) },
		func() { v.Set(4, 0) },
		func() { v.Set(0, 256) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if _, err := NewPackedVector(s, "p", -1, 8); err == nil {
		t.Error("negative length should fail")
	}
	if _, err := NewPackedVector(s, "p", 4, 0); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewPackedVector(s, "p", 4, 33); err == nil {
		t.Error("width 33 should fail")
	}
}

func TestPackedVectorGeometry(t *testing.T) {
	s := memory.NewSpace()
	v, _ := NewPackedVector(s, "p", 1_000_000, 20)
	// 10^6 codes at 20 bits = 2.5 MB.
	if got := v.Bytes(); got < 2_500_000 || got > 2_500_064 {
		t.Errorf("Bytes = %d, want ~2.5e6", got)
	}
	if got := v.RowsPerLine(); got != 25.6 {
		t.Errorf("RowsPerLine = %v, want 25.6", got)
	}
	if v.LineOfRow(0) != 0 {
		t.Error("row 0 not in line 0")
	}
	if v.LineOfRow(25) != 0 || v.LineOfRow(26) != 1 {
		t.Errorf("line boundary wrong: row25=%d row26=%d", v.LineOfRow(25), v.LineOfRow(26))
	}
	if !v.Region().Contains(v.Addr(999_999)) {
		t.Error("Addr of last row outside region")
	}
}

func TestPackedVectorProperty(t *testing.T) {
	s := memory.NewSpace()
	v, _ := NewPackedVector(s, "p", 257, 20)
	f := func(idx uint16, code uint32) bool {
		i := int(idx) % 257
		c := code & 0xFFFFF
		v.Set(i, c)
		return v.Get(i) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountInRange(t *testing.T) {
	s := memory.NewSpace()
	v, _ := NewPackedVector(s, "p", 100, 8)
	for i := 0; i < 100; i++ {
		v.Set(i, uint32(i))
	}
	if got := v.CountInRange(0, 100, 10, 20); got != 10 {
		t.Errorf("CountInRange = %d, want 10", got)
	}
	if got := v.CountInRange(50, 100, 0, 60); got != 10 {
		t.Errorf("CountInRange subrange = %d, want 10", got)
	}
	if got := v.CountInRange(0, 100, 200, 250); got != 0 {
		t.Errorf("CountInRange empty = %d", got)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	s := memory.NewSpace()
	vals := []int64{5, 3, 5, 9, 3, 3, 7}
	c, err := Encode(s, "c", vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != len(vals) {
		t.Fatalf("Rows = %d", c.Rows())
	}
	for i, want := range vals {
		if got := c.Value(i); got != want {
			t.Errorf("Value(%d) = %d, want %d", i, got, want)
		}
	}
	if c.Dict.Len() != 4 {
		t.Errorf("dictionary size = %d, want 4", c.Dict.Len())
	}
	if c.Footprint() == 0 {
		t.Error("zero footprint")
	}
}

func TestEncodeDenseRoundTrip(t *testing.T) {
	s := memory.NewSpace()
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = 1 + rng.Int63n(1000)
	}
	c, err := EncodeDense(s, "c", vals, 1, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got := c.Value(i); got != want {
			t.Fatalf("Value(%d) = %d, want %d", i, got, want)
		}
	}
	// Out-of-domain value rejected.
	if _, err := EncodeDense(s, "d", []int64{0}, 1, 1000, 4); err == nil {
		t.Error("out-of-domain value should fail")
	}
}

func TestTable(t *testing.T) {
	s := memory.NewSpace()
	a, _ := Encode(s, "a", []int64{1, 2, 3}, 4)
	b, _ := Encode(s, "b", []int64{4, 5, 6}, 4)
	short, _ := Encode(s, "short", []int64{1}, 4)
	dup, _ := Encode(s, "a", []int64{9, 9, 9}, 4)

	tab := NewTable("t")
	if tab.Rows() != 0 {
		t.Error("empty table should have 0 rows")
	}
	if err := tab.AddColumn(a); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(b); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(short); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := tab.AddColumn(dup); err == nil {
		t.Error("duplicate name should fail")
	}
	if tab.Rows() != 3 || len(tab.Columns()) != 2 {
		t.Errorf("Rows=%d Columns=%d", tab.Rows(), len(tab.Columns()))
	}
	if got, err := tab.Column("b"); err != nil || got != b {
		t.Errorf("Column(b) = %v, %v", got, err)
	}
	if _, err := tab.Column("zzz"); err == nil {
		t.Error("missing column should fail")
	}
	if tab.MustColumn("a") != a {
		t.Error("MustColumn(a) wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustColumn missing should panic")
			}
		}()
		tab.MustColumn("zzz")
	}()
	if tab.Footprint() == 0 {
		t.Error("zero table footprint")
	}
}

func TestInvertedIndex(t *testing.T) {
	s := memory.NewSpace()
	vals := []int64{10, 20, 10, 30, 20, 10}
	c, _ := Encode(s, "k", vals, 4)
	ix, err := BuildInvertedIndex(s, c)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int64][]uint32{
		10: {0, 2, 5},
		20: {1, 4},
		30: {3},
	}
	for v, want := range cases {
		got := ix.Lookup(v)
		if len(got) != len(want) {
			t.Fatalf("Lookup(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Lookup(%d) = %v, want %v", v, got, want)
			}
		}
	}
	if got := ix.Lookup(99); got != nil {
		t.Errorf("Lookup(99) = %v, want nil", got)
	}
	if ix.Column() != c {
		t.Error("Column() wrong")
	}
	// Addresses land in the region.
	for code := uint32(0); code < 3; code++ {
		if !ix.Region().Contains(ix.HeaderAddr(code)) {
			t.Errorf("HeaderAddr(%d) outside region", code)
		}
		for k := range ix.PostingsOf(code) {
			if !ix.Region().Contains(ix.PostingAddr(code, k)) {
				t.Errorf("PostingAddr(%d,%d) outside region", code, k)
			}
		}
	}
	if ix.Bytes() != 3*8+6*4 {
		t.Errorf("Bytes = %d, want %d", ix.Bytes(), 3*8+6*4)
	}
}

func TestInvertedIndexLookupMatchesColumn(t *testing.T) {
	s := memory.NewSpace()
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = rng.Int63n(50)
	}
	c, _ := EncodeDense(s, "k", vals, 0, 49, 4)
	ix, _ := BuildInvertedIndex(s, c)
	for v := int64(0); v < 50; v++ {
		rows := ix.Lookup(v)
		for _, r := range rows {
			if c.Value(int(r)) != v {
				t.Fatalf("row %d holds %d, want %d", r, c.Value(int(r)), v)
			}
		}
		// Count agrees with a scan.
		n := 0
		for i := range vals {
			if vals[i] == v {
				n++
			}
		}
		if n != len(rows) {
			t.Fatalf("value %d: index has %d rows, scan found %d", v, len(rows), n)
		}
	}
}
