package cachepart

// One benchmark per table/figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// Each benchmark iteration runs the complete (scaled-down) experiment
// and reports the figure's headline quantity as a custom metric, so
// `go test -bench=.` regenerates every result:
//
//	norm_min/max     — normalized throughput extremes of a sweep
//	gain_*           — partitioned vs shared throughput ratio
//	...
//
// Benchmarks run at 1/64 scale with short windows; the cmd/cachepart
// tool runs the same experiments at 1/8 scale with full sweeps.

import (
	"testing"

	"cachepart/internal/cachesim"
	"cachepart/internal/engine"
	"cachepart/internal/exec"
	"cachepart/internal/memory"
	"cachepart/internal/resctrl"
)

// kernelIface aliases the operator kernel contract for the ablation
// benches.
type kernelIface = exec.Kernel

func newSortAgg(space *memory.Space, g, v *Column, n int) (kernelIface, error) {
	return exec.NewSortAggLocal(space, g, v, 0, n, 64)
}

func newHashAgg(space *memory.Space, g, v *Column, n int) (kernelIface, error) {
	tab := exec.NewAggTable(space, "bench.hash", g.Dict.Len())
	return exec.NewAggLocal(g, v, 0, n, tab)
}

func driveKernel(ctx *exec.Ctx, k kernelIface) {
	exec.Drive(ctx, k, 2048)
}

// benchParams are small enough that one experiment fits in a
// benchmark iteration.
func benchParams() Params {
	return Params{
		Scale:     64,
		Cores:     8,
		Ways:      []int{2, 8, 20},
		Duration:  0.002,
		RowsScan:  1 << 21,
		RowsAgg:   1 << 19,
		RowsProbe: 1 << 19,
		Seed:      1,
	}
}

func reportNorms(b *testing.B, pts []WayPoint) {
	b.Helper()
	lo, hi := 1.0, 0.0
	for _, p := range pts {
		if p.Norm < lo {
			lo = p.Norm
		}
		if p.Norm > hi {
			hi = p.Norm
		}
	}
	b.ReportMetric(lo, "norm_min")
	b.ReportMetric(hi, "norm_max")
}

// BenchmarkFig4 — column scan vs LLC size (expect norm_min ≈ 1: flat).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Fig4(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportNorms(b, pts)
		}
	}
}

// BenchmarkFig5 — aggregation vs LLC size for the 40 MiB dictionary
// (expect norm_min well below 1: cache-sensitive).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		agg, err := NewAggQuery(sys, 10_000_000, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := sweepForBench(sys, agg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportNorms(b, pts)
		}
	}
}

// BenchmarkFig6 — foreign-key join vs LLC size at 10^8 keys (expect
// norm_min < 1: the LLC-comparable bit vector is sensitive).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		join, err := NewJoinQuery(sys, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := sweepForBench(sys, join)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportNorms(b, pts)
		}
	}
}

// sweepForBench mirrors the harness way sweep through the public API.
func sweepForBench(sys *System, q Query) ([]WayPoint, error) {
	var pts []WayPoint
	best := 0.0
	for _, w := range sys.Params.Ways {
		if err := sys.Engine.LimitWays(w); err != nil {
			return nil, err
		}
		m, err := sys.RunIsolated(q, sys.AllCores())
		if err != nil {
			return nil, err
		}
		pts = append(pts, WayPoint{Ways: w, Measure: m})
		if m.Throughput > best {
			best = m.Throughput
		}
	}
	if err := sys.Engine.LimitWays(0); err != nil {
		return nil, err
	}
	for i := range pts {
		pts[i].Norm = pts[i].Measure.Throughput / best
	}
	return pts, nil
}

// benchPair measures shared vs partitioned for one co-run and reports
// the victim's gain.
func benchPair(b *testing.B, sys *System, qa Query, qb Query, oltpSplit bool) {
	b.Helper()
	var ca, cb []int
	if oltpSplit {
		all := sys.AllCores()
		ca, cb = all[:len(all)-1], all[len(all)-1:]
	} else {
		ca, cb = sys.SplitCores()
	}
	isoB, err := sys.RunIsolated(qb, cb)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetPartitioning(false); err != nil {
		b.Fatal(err)
	}
	_, shared, err := sys.RunPair(qa, ca, qb, cb)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetPartitioning(true); err != nil {
		b.Fatal(err)
	}
	_, part, err := sys.RunPair(qa, ca, qb, cb)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetPartitioning(false); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(shared.Throughput/isoB.Throughput, "norm_shared")
	b.ReportMetric(part.Throughput/isoB.Throughput, "norm_partitioned")
	b.ReportMetric(part.Throughput/shared.Throughput, "gain")
}

// BenchmarkFig9 — scan ∥ aggregation at the sensitive group count
// (expect gain > 1).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		agg, err := NewAggQuery(sys, 10_000_000, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		benchPair(b, sys, scan, agg, false)
	}
}

// BenchmarkFig9Parallel — the same co-run in the epoch-parallel
// simulation mode (DESIGN.md §11). Contrast ns/op against
// BenchmarkFig9: on a multi-core host the private-level simulation
// spreads across goroutines; the reported metrics stay bit-identical
// across worker counts.
func BenchmarkFig9Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Parallel = true
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		agg, err := NewAggQuery(sys, 10_000_000, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		benchPair(b, sys, scan, agg, false)
	}
}

// BenchmarkFig10 — aggregation ∥ join at 10^8 keys: the join60 scheme
// must beat join10 for the sensitive bit vector.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		agg, err := NewAggQuery(sys, 10_000_000, 1_000)
		if err != nil {
			b.Fatal(err)
		}
		join, err := NewJoinQuery(sys, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		ca, cb := sys.SplitCores()
		isoJoin, err := sys.RunIsolated(join, cb)
		if err != nil {
			b.Fatal(err)
		}
		// The default policy applies the bit-vector heuristic, which
		// selects the 60% slice here.
		if err := sys.SetPartitioning(true); err != nil {
			b.Fatal(err)
		}
		_, j, err := sys.RunPair(agg, ca, join, cb)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(j.Throughput/isoJoin.Throughput, "norm_join_auto")
	}
}

// BenchmarkFig11 — TPC-H Q1 (the paper's biggest TPC-H winner) ∥ scan.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.RowsAgg = 1 << 18
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		db, err := NewTPCH(sys)
		if err != nil {
			b.Fatal(err)
		}
		q1, err := NewTPCHQuery(sys, db, 1)
		if err != nil {
			b.Fatal(err)
		}
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		benchPair(b, sys, scan, q1, false)
	}
}

// BenchmarkFig11Parallel — the TPC-H co-run in the epoch-parallel
// simulation mode; compare ns/op against BenchmarkFig11.
func BenchmarkFig11Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.RowsAgg = 1 << 18
		p.Parallel = true
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		db, err := NewTPCH(sys)
		if err != nil {
			b.Fatal(err)
		}
		q1, err := NewTPCHQuery(sys, db, 1)
		if err != nil {
			b.Fatal(err)
		}
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		benchPair(b, sys, scan, q1, false)
	}
}

// BenchmarkFig12 — scan ∥ S/4HANA OLTP query, 13 projected columns.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		acdoca, err := NewACDOCA(sys, 1<<19)
		if err != nil {
			b.Fatal(err)
		}
		oltp, err := NewOLTPQuery(acdoca, 13)
		if err != nil {
			b.Fatal(err)
		}
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		benchPair(b, sys, scan, oltp, true)
	}
}

// BenchmarkFig1 — the teaser (same workload as Fig12a).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig1(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Concurrent, "norm_concurrent")
			b.ReportMetric(r.Partitioned, "norm_partitioned")
		}
	}
}

// BenchmarkAdaptiveVsStatic — the Figure 9(b) co-run under no
// partitioning, the paper's static scheme, and the online feedback
// controller with annotations stripped: the controller must recover
// most of the static gain without being told which query is the scan.
func BenchmarkAdaptiveVsStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FigAdapt(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			shared, _ := r.Blind.Arm("shared")
			static, _ := r.Annotated.Arm("static")
			adaptive, _ := r.Blind.Arm("adaptive")
			b.ReportMetric(shared.NormB, "norm_none")
			b.ReportMetric(static.NormB, "norm_static")
			b.ReportMetric(adaptive.NormB, "norm_adaptive")
			if shared.NormB > 0 {
				b.ReportMetric(static.NormB/shared.NormB, "gain_static")
				b.ReportMetric(adaptive.NormB/shared.NormB, "gain_adaptive")
			}
		}
	}
}

// BenchmarkServe — one FigServe sweep at the 1.0× saturation point:
// seeded arrival generation, admission, CLOS-aware dispatch and the
// percentile report for all three partitioning arms. The reported
// p99 gain is the headline serving claim (static tail latency over
// shared-pool; >1 is better).
func BenchmarkServe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FigServeOpts(benchParams(), ServeOptions{Loads: []float64{1.0}, Arrivals: 120})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			arms := map[string]*ServeReport{}
			for _, arm := range r.Loads[0].Arms {
				arms[arm.Name] = arm.Report
			}
			if shared, static := arms["shared"], arms["static"]; shared != nil && static != nil && static.P99 > 0 {
				b.ReportMetric(float64(shared.P99)/float64(static.P99), "p99_gain_static")
			}
		}
	}
}

// BenchmarkOverload — one FigOverload point at 3× rogue-polluter
// overload on the static arm: SLO deadlines, polluter-first shedding,
// circuit breakers and client retries end to end. The reported metric
// is the headline robustness claim — victim p99 under no-shed over
// victim p99 under polluter-first shedding (>1 means shedding the
// polluter recovers the victim's tail).
func BenchmarkOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FigOverloadOpts(benchParams(), OverloadOptions{
			Loads:    []float64{3.0},
			Sheds:    []string{"none", "polluter"},
			Arms:     []string{"static"},
			Arrivals: 160,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			ld := r.Loads[0]
			none, pol := ld.Run("static", "none"), ld.Run("static", "polluter")
			if none != nil && pol != nil && pol.Tenants[r.Victim].P99 > 0 {
				b.ReportMetric(float64(none.Tenants[r.Victim].P99)/float64(pol.Tenants[r.Victim].P99),
					"victim_p99_recovery")
				b.ReportMetric(pol.Tenants[r.Victim].SLOAttainment, "victim_slo_polluter")
			}
		}
	}
}

// BenchmarkMaskWrite measures the engine's CUID-to-mask path (the
// Section V-C overhead concern): one task move plus scheduler update.
func BenchmarkMaskWrite(b *testing.B) {
	cfg := cachesim.DefaultConfig()
	m, err := cachesim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fs := resctrl.Mount(m.CAT())
	if err := fs.MakeGroup("polluting"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteSchemata("polluting", "L3:0=3"); err != nil {
		b.Fatal(err)
	}
	groups := []string{"polluting", resctrl.RootGroup}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.MoveTask(1000, groups[i%2]); err != nil {
			b.Fatal(err)
		}
		if err := fs.Schedule(1000, i%22); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorAccess measures raw simulation speed: mixed
// sequential and random accesses through the full hierarchy.
func BenchmarkSimulatorAccess(b *testing.B) {
	cfg := cachesim.DefaultConfig().Scaled(16)
	cfg.Cores = 4
	m, err := cachesim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	space := memory.NewSpace()
	region := space.Alloc("bench", 16<<20)
	b.ResetTimer()
	var seq uint64
	rnd := uint64(12345)
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			m.Access(0, region.Addr(seq%region.Size), false)
			seq += memory.LineSize
		} else {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			m.Access(1, region.Addr(rnd%region.Size), false)
		}
	}
}

// BenchmarkSimulatorAccessBatch measures the same access mix through
// the batched front door (Machine.AccessBatch): sequential L1 hits
// take the inlined fast path, everything else falls back to the full
// Access walk with bit-identical results.
func BenchmarkSimulatorAccessBatch(b *testing.B) {
	cfg := cachesim.DefaultConfig().Scaled(16)
	cfg.Cores = 4
	m, err := cachesim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	space := memory.NewSpace()
	region := space.Alloc("bench", 16<<20)
	const chunk = 256
	ops := make([]cachesim.BatchOp, chunk)
	b.ResetTimer()
	var seq uint64
	rnd := uint64(12345)
	for done := 0; done < b.N; {
		n := min(chunk, b.N-done)
		for i := 0; i < n; i++ {
			if (done+i)%2 == 0 {
				ops[i] = cachesim.BatchOp{Addr: region.Addr(seq % region.Size)}
				seq += memory.LineSize
			} else {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				ops[i] = cachesim.BatchOp{Addr: region.Addr(rnd % region.Size)}
			}
		}
		m.AccessBatch(0, ops[:n])
		done += n
	}
}

// BenchmarkAblationMaskWidth reproduces the paper's Section V-B note:
// restricting the scan to a single way ("0x1") degrades it measurably
// more than the 10% two-way slice.
func BenchmarkAblationMaskWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		cores := sys.AllCores()
		throughputAt := func(ways int) float64 {
			if err := sys.Engine.LimitWays(ways); err != nil {
				b.Fatal(err)
			}
			m, err := sys.RunIsolated(scan, cores)
			if err != nil {
				b.Fatal(err)
			}
			return m.Throughput
		}
		one := throughputAt(1)
		two := throughputAt(2)
		full := throughputAt(20)
		if err := sys.Engine.LimitWays(0); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(one/full, "norm_mask0x1")
			b.ReportMetric(two/full, "norm_mask0x3")
		}
	}
}

// BenchmarkAblationPrefetcher contrasts scan throughput with the
// stride prefetcher on and off — the mechanism that makes scans
// bandwidth-bound rather than latency-bound.
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(depth int) float64 {
		p := benchParams()
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sys.Machine.Config()
		cfg.PrefetchDepth = depth
		m2, err := cachesim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e2, err := engine.New(m2, sys.Engine.Policy())
		if err != nil {
			b.Fatal(err)
		}
		sys.Machine, sys.Engine = m2, e2
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		meas, err := sys.RunIsolated(scan, sys.AllCores())
		if err != nil {
			b.Fatal(err)
		}
		return meas.Throughput
	}
	for i := 0; i < b.N; i++ {
		on := run(16)
		off := run(0)
		if i == b.N-1 {
			b.ReportMetric(on/off, "prefetch_speedup")
		}
	}
}

// BenchmarkAblationHashVsSortAgg contrasts the two aggregation
// families of the related work ("hashing is sorting"): the hash
// aggregation's throughput depends on the LLC slice, the sort-based
// radix aggregation's barely does.
func BenchmarkAblationHashVsSortAgg(b *testing.B) {
	run := func(useSort bool, limitWays int) float64 {
		p := benchParams()
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Engine.LimitWays(limitWays); err != nil {
			b.Fatal(err)
		}
		space := sys.Space
		n := 1 << 18
		// Group count chosen so the hash table is LLC-sized at this
		// scale, the most cache-sensitive regime.
		groups, err := GenerateColumn(sys, "g", n, 1, 40_000)
		if err != nil {
			b.Fatal(err)
		}
		values, err := GenerateColumn(sys, "v", n, 1, 1000)
		if err != nil {
			b.Fatal(err)
		}
		ctx := sys.Engine.Ctx(0)
		var k kernelIface
		if useSort {
			k, err = newSortAgg(space, groups, values, n)
		} else {
			k, err = newHashAgg(space, groups, values, n)
		}
		if err != nil {
			b.Fatal(err)
		}
		driveKernel(ctx, k)
		return float64(n) / sys.Machine.Seconds(sys.Machine.Now(0))
	}
	for i := 0; i < b.N; i++ {
		hashRatio := run(false, 2) / run(false, 20)
		sortRatio := run(true, 2) / run(true, 20)
		if i == b.N-1 {
			b.ReportMetric(hashRatio, "hash_norm_2way")
			b.ReportMetric(sortRatio, "sort_norm_2way")
		}
	}
}

// BenchmarkAblationInclusiveLLC contrasts the pollution damage with an
// inclusive vs non-inclusive LLC: back-invalidation makes pollution
// reach the victim's private caches.
func BenchmarkAblationInclusiveLLC(b *testing.B) {
	run := func(inclusive bool) float64 {
		p := benchParams()
		sys, err := NewSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sys.Machine.Config()
		cfg.InclusiveLLC = inclusive
		m2, err := cachesim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e2, err := engine.New(m2, sys.Engine.Policy())
		if err != nil {
			b.Fatal(err)
		}
		sys.Machine, sys.Engine = m2, e2
		scan, err := NewScanQuery(sys)
		if err != nil {
			b.Fatal(err)
		}
		agg, err := NewAggQuery(sys, 10_000_000, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		ca, cb := sys.SplitCores()
		iso, err := sys.RunIsolated(agg, cb)
		if err != nil {
			b.Fatal(err)
		}
		_, shared, err := sys.RunPair(scan, ca, agg, cb)
		if err != nil {
			b.Fatal(err)
		}
		return shared.Throughput / iso.Throughput
	}
	for i := 0; i < b.N; i++ {
		inc := run(true)
		non := run(false)
		if i == b.N-1 {
			b.ReportMetric(inc, "norm_inclusive")
			b.ReportMetric(non, "norm_noninclusive")
		}
	}
}
