// Package cachepart is a reproduction of "Accelerating Concurrent
// Workloads with CPU Cache Partitioning" (Noll, Teubner, May, Böhm —
// ICDE 2018) as a self-contained Go library.
//
// It bundles three layers:
//
//   - a simulated multi-core machine with an Intel-CAT-partitionable,
//     inclusive last-level cache, a stride prefetcher and a shared
//     DRAM bandwidth budget (internal/cachesim), programmed through a
//     Linux-resctrl-style interface (internal/resctrl);
//
//   - an in-memory columnar execution engine in the mould of the
//     paper's DBMS: dictionary-encoded bit-packed columns, a compressed
//     column scan, hash-based grouped aggregation with thread-local
//     tables, a bit-vector foreign-key join, inverted-index OLTP
//     lookups, and a job scheduler that annotates every operator job
//     with a cache usage identifier (CUID) and maps it to a CAT
//     capacity mask (internal/engine, internal/exec, internal/core);
//
//   - the paper's full evaluation: micro-benchmark sweeps (Figures
//     4-6), concurrent workloads (Figures 9-10), TPC-H co-runs
//     (Figure 11) and the S/4HANA OLTP experiments (Figures 1 and 12)
//     (internal/harness, internal/workload);
//
//   - an online feedback controller that reprograms the CAT masks from
//     cache-occupancy and memory-bandwidth telemetry every control
//     epoch — the dynamic counterpart of the static scheme, for
//     workloads whose annotations are missing or wrong
//     (internal/adapt; attach with System.EnableAdaptive).
//
// Quickstart:
//
//	params := cachepart.FastParams()
//	sys, err := cachepart.NewSystem(params)
//	if err != nil { ... }
//	scan, _ := cachepart.NewScanQuery(sys)
//	agg, _ := cachepart.NewAggQuery(sys, 10_000_000, 100_000)
//	a, b := sys.SplitCores()
//	_ = sys.SetPartitioning(true)
//	scanM, aggM, _ := sys.RunPair(scan, a, agg, b)
//
// All experiments run at a configurable scale: Params.Scale divides
// the paper machine's cache capacities and the data-structure sizes
// together, preserving normalized-throughput shapes; Scale 1 is the
// paper's 55 MiB-LLC Xeon E5-2699 v4.
package cachepart

import (
	"math/rand"

	"cachepart/internal/adapt"
	"cachepart/internal/cachesim"
	"cachepart/internal/cat"
	"cachepart/internal/column"
	"cachepart/internal/core"
	"cachepart/internal/engine"
	"cachepart/internal/fault"
	"cachepart/internal/harness"
	"cachepart/internal/serve"
	"cachepart/internal/sql"
	"cachepart/internal/workload"
	"cachepart/internal/workload/s4"
	"cachepart/internal/workload/tpch"
)

// Core vocabulary, re-exported from the implementation packages.
type (
	// Params configures machine scale, core count, sampling sizes and
	// the simulated measurement window.
	Params = harness.Params
	// System is a simulated machine plus engine plus data space.
	System = harness.System
	// Measure is one stream's measured window: throughput, LLC hit
	// ratio, misses per instruction, DRAM bandwidth.
	Measure = harness.Measure
	// PairRow is a two-query co-run result with isolated baselines and
	// per-arm normalized throughputs.
	PairRow = harness.PairRow
	// PairArm is one arm (e.g. "shared", "partitioned") of a PairRow.
	PairArm = harness.PairArm
	// WayPoint is one sample of an LLC-size sweep.
	WayPoint = harness.WayPoint
	// GroupSeries is one curve of a sweep figure.
	GroupSeries = harness.GroupSeries
	// CurveSet is one figure panel of curves.
	CurveSet = harness.CurveSet
	// Fig9Panel is one dictionary configuration of Figure 9.
	Fig9Panel = harness.Fig9Panel
	// Fig1Result is the teaser experiment's three bars.
	Fig1Result = harness.Fig1Result

	// Policy is the paper's partitioning scheme: which LLC fraction
	// each job class may fill into.
	Policy = core.Policy
	// CUID is a job's cache usage identifier.
	CUID = core.CUID
	// Footprint carries data-dependent policy hints (bit-vector size).
	Footprint = core.Footprint
	// CurvePoint is a micro-benchmark sample used to derive schemes.
	CurvePoint = core.CurvePoint

	// WayMask is a CAT capacity bitmask over LLC ways.
	WayMask = cat.WayMask

	// Query plans repeated executions of one statement.
	Query = engine.Query
	// Phase is one barrier-separated stage of an execution.
	Phase = engine.Phase
	// StreamSpec assigns a query to a set of worker cores.
	StreamSpec = engine.StreamSpec

	// MachineConfig describes the simulated hardware.
	MachineConfig = cachesim.Config
	// CoreStats are the simulator's per-core performance counters.
	CoreStats = cachesim.CoreStats

	// AdaptConfig configures the online feedback controller; attach one
	// with System.EnableAdaptive, detach with System.DisableAdaptive.
	AdaptConfig = adapt.Config
	// AdaptController is an attached controller: it exposes the mask
	// transition log, schemata-write count and per-stream classes.
	AdaptController = adapt.Controller
	// AdaptTransition is one recorded mask reprogramming.
	AdaptTransition = adapt.Transition
	// AdaptClass is the controller's behavioural classification of a
	// stream.
	AdaptClass = adapt.Class
	// AdaptResult is the adaptive-vs-static experiment: the Figure 9(b)
	// co-run under no partitioning, the static scheme and the online
	// controller, annotated and blind.
	AdaptResult = harness.AdaptResult

	// FaultConfig sets per-operation control-plane fault-injection
	// probabilities; enable with System.EnableChaos, disable with
	// System.DisableChaos.
	FaultConfig = fault.Config
	// FaultPlane is an interposed fault injector over the resctrl
	// control plane; it exposes injection statistics.
	FaultPlane = fault.Plane
	// FaultStats counts what a FaultPlane injected.
	FaultStats = fault.Stats
	// ChaosPoint is one fault rate of the chaos sweep.
	ChaosPoint = harness.ChaosPoint
	// ChaosResult is the chaos experiment's baseline and sweep points.
	ChaosResult = harness.ChaosResult

	// ServeConfig drives the open-loop multi-tenant serving tier: a
	// seeded arrival generator over tenant cohorts, bounded admission
	// queues and a CLOS-aware dispatcher, all in virtual time.
	ServeConfig = serve.Config
	// ServeTenant is one cohort: an arrival process over a workload mix
	// with a bounded admission queue.
	ServeTenant = serve.Tenant
	// ServeWorkload is one entry of a tenant's query mix.
	ServeWorkload = serve.Workload
	// ServeProcess is a tenant's arrival process (Poisson, diurnal or
	// trace replay).
	ServeProcess = serve.Process
	// ServePeriod is one sinusoidal component of a diurnal process.
	ServePeriod = serve.Period
	// ServeArrival is one generated arrival of the seeded trace.
	ServeArrival = serve.Arrival
	// ServeReport is a serving run's metrics: latency percentiles in
	// virtual cycles, queue depths, drop accounting, per-tenant
	// slowdowns and Jain fairness.
	ServeReport = serve.Report
	// ServeTenantReport is one tenant's slice of a ServeReport.
	ServeTenantReport = serve.TenantReport
	// ServeDiscipline selects the dispatch order (CLOS-aware, FIFO,
	// round-robin).
	ServeDiscipline = serve.Discipline
	// AdmitPolicy decides whether a tenant's arrival enters its queue.
	AdmitPolicy = serve.AdmitPolicy
	// TailDrop admits until the tenant queue is full.
	TailDrop = serve.TailDrop
	// TokenBucket rate-limits admissions per tenant.
	TokenBucket = serve.TokenBucket
	// ServeOptions parameterises the FigServe capacity sweep.
	ServeOptions = harness.ServeOptions
	// ServeResult is the sweep: per load multiple, the shared-pool,
	// static-scheme and adaptive-controller arms.
	ServeResult = harness.ServeResult
	// ServeLoad is one load multiple of the sweep.
	ServeLoad = harness.ServeLoad
	// ServeArmReport is one partitioning arm's report at one load.
	ServeArmReport = harness.ServeArmReport

	// SLOConfig is a tenant's service-level objective: a client-visible
	// p99 latency target and a queueing deadline past which a waiting
	// query is dropped, both in simulated seconds.
	SLOConfig = serve.SLO
	// RetryConfig is the deterministic client retry model: attempts,
	// seeded exponential backoff and a per-tenant retry budget.
	RetryConfig = serve.Retry
	// BreakerConfig tunes the per-tenant circuit breakers (sliding
	// violation window, trip fraction, seeded half-open backoff).
	BreakerConfig = serve.Breaker
	// ShedPolicy decides which arrivals to turn away under overload;
	// ShedNone, ShedFair and ShedPolluter implement it.
	ShedPolicy   = serve.ShedPolicy
	ShedNone     = serve.ShedNone
	ShedFair     = serve.ShedFair
	ShedPolluter = serve.ShedPolluter
	// ServeFaultConfig seeds serving-plane chaos: arrival-burst and
	// dispatcher-stall fault windows composing with resctrl faults.
	ServeFaultConfig = fault.ServeConfig
	// OverloadOptions parameterises the FigOverload sweep.
	OverloadOptions = harness.OverloadOptions
	// OverloadResult is the sweep: per rogue-polluter load multiple,
	// every (cache arm, shed policy) cell.
	OverloadResult = harness.OverloadResult
	// OverloadLoad is one load multiple of the overload sweep.
	OverloadLoad = harness.OverloadLoad
	// OverloadRun is one (cache arm, shed policy) cell.
	OverloadRun = harness.OverloadRun
)

// Dispatch disciplines for ServeConfig.Discipline.
const (
	DiscCLOS = serve.DiscCLOS
	DiscFIFO = serve.DiscFIFO
	DiscRR   = serve.DiscRR
)

// UniformFaults builds a FaultConfig injecting every control-plane
// operation at the same rate from the given seed.
func UniformFaults(rate float64, seed int64) FaultConfig { return fault.Uniform(rate, seed) }

// The controller's stream classes.
const (
	AdaptUnknown        = adapt.Unknown
	AdaptNeutral        = adapt.Neutral
	AdaptCacheSensitive = adapt.CacheSensitive
	AdaptStreaming      = adapt.Streaming
)

// Cache usage identifiers (Section V-C of the paper).
const (
	// Sensitive jobs are cache-sensitive and keep the entire cache.
	Sensitive = core.Sensitive
	// Polluting jobs stream without reuse and are restricted to a
	// small slice of the cache.
	Polluting = core.Polluting
	// Depends jobs are classified at run time from their bit-vector
	// footprint.
	Depends = core.Depends
)

// DefaultParams returns the command-line tool's defaults: 1/8 of the
// paper machine with multi-second simulations per figure.
func DefaultParams() Params { return harness.Default() }

// FastParams returns test/benchmark defaults: 1/32 scale, short
// windows.
func FastParams() Params { return harness.Fast() }

// NewSystem builds a simulated system at the requested scale with
// partitioning initially disabled.
func NewSystem(p Params) (*System, error) { return harness.NewSystem(p) }

// DefaultAdaptConfig returns the online controller's defaults: 100 µs
// control epochs, streaming above 3.5 % of the machine's DRAM
// bandwidth per worker core, two-epoch hysteresis, backed-off probation, and the
// beneficiary rule that never confines an isolated query.
func DefaultAdaptConfig() AdaptConfig { return adapt.DefaultConfig() }

// Unannotated wraps a query with its CUID annotations stripped: every
// phase reports the unannotated default. Under the static policy such
// a query is never confined; under the adaptive controller telemetry
// alone must classify it.
func Unannotated(q Query) Query { return harness.Unannotated(q) }

// DefaultPolicy returns the paper's partitioning scheme for an LLC
// geometry: polluting jobs 10%, sensitive jobs 100%, joins 10% or 60%
// by the bit-vector heuristic.
func DefaultPolicy(llcBytes uint64, llcWays int) Policy {
	return core.DefaultPolicy(llcBytes, llcWays)
}

// DeriveScheme derives a partitioning scheme from micro-benchmark
// curves of the polluting operators (the automated Section V-B).
func DeriveScheme(llcBytes uint64, llcWays int, pollutingCurves [][]CurvePoint) (Policy, error) {
	return core.DeriveScheme(llcBytes, llcWays, pollutingCurves)
}

// ClassifyCurve derives a job's cache usage identifier from its LLC
// sweep.
func ClassifyCurve(points []CurvePoint, totalWays int) (CUID, error) {
	return core.ClassifyCurve(points, totalWays)
}

// NewScanQuery builds the paper's Query 1 (column scan) data set and
// query at the system's scale.
func NewScanQuery(sys *System) (Query, error) { return harness.NewQ1(sys) }

// NewAggQuery builds Query 2 (aggregation with grouping) for
// paper-nominal distinct-value and group counts (e.g. 10_000_000
// distinct values = the 40 MiB dictionary, 100_000 groups).
func NewAggQuery(sys *System, nominalDistinctValues, nominalGroups int64) (Query, error) {
	return harness.NewQ2(sys, nominalDistinctValues, nominalGroups)
}

// NewJoinQuery builds Query 3 (foreign-key join) for a paper-nominal
// primary-key count (10^6..10^9).
func NewJoinQuery(sys *System, nominalKeys int64) (Query, error) {
	return harness.NewQ3(sys, nominalKeys)
}

// TPCH holds the generated TPC-H profile database.
type TPCH = tpch.DB

// NewTPCH generates the scaled TPC-H SF 100 profile database in the
// system's address space.
func NewTPCH(sys *System) (*TPCH, error) {
	return tpch.Load(sys.Space, sys.Rng, tpch.Spec{
		Scale:        sys.Params.Scale,
		LineitemRows: sys.Params.RowsAgg,
	})
}

// NewTPCHQuery builds TPC-H query number (1..22) as an operator
// pipeline over the database.
func NewTPCHQuery(sys *System, db *TPCH, number int) (Query, error) {
	return tpch.NewQuery(db, sys.Space, number)
}

// ACDOCA is the generated S/4HANA wide-table model.
type ACDOCA = s4.Table

// NewACDOCA generates the S/4HANA ACDOCA model in the system's space.
func NewACDOCA(sys *System, rows int) (*ACDOCA, error) {
	return s4.Load(sys.Space, sys.Rng, s4.Spec{Rows: rows, Scale: sys.Params.Scale})
}

// NewOLTPQuery builds the S/4HANA OLTP query projecting n of the
// table's big-dictionary columns (1..13).
func NewOLTPQuery(t *ACDOCA, n int) (Query, error) {
	if n < 1 {
		n = 1
	}
	if n > len(t.Big) {
		n = len(t.Big)
	}
	return s4.NewOLTPQuery(t, t.Big[:n])
}

// Catalog owns SQL-defined tables (the Figure 3 schemata and beyond).
type Catalog = sql.Catalog

// Plan is an executable SQL query plan; it implements Query, so
// planned statements co-run under the partitioned engine like any
// built-in workload.
type Plan = sql.Plan

// NewCatalog creates an empty SQL catalog over the system's address
// space. Use Catalog.Exec for DDL/INSERT, Catalog.BulkUniform for
// generated data, and PlanQuery for SELECTs.
func NewCatalog(sys *System) *Catalog { return sql.NewCatalog(sys.Space) }

// PlanQuery parses and plans a SELECT statement against the catalog.
// The planner recognises the paper's three query shapes (Figure 2) and
// annotates each with its cache usage identifier.
func PlanQuery(cat *Catalog, src string) (*Plan, error) { return sql.PlanQuery(cat, src) }

// ExecutePlan runs a plan synchronously on one simulated core and
// leaves its result in the plan (Count / Groups).
func ExecutePlan(sys *System, p *Plan, seed int64) error {
	ctx := sys.Engine.Ctx(0)
	return p.Execute(ctx, rand.New(rand.NewSource(seed)))
}

// GenerateColumn generates a dictionary-encoded column of n uniform
// integers in [lo, hi] in the system's space, for building custom
// workloads.
func GenerateColumn(sys *System, name string, n int, lo, hi int64) (*Column, error) {
	return workload.EncodeUniformDense(sys.Space, name, sys.Rng, n, lo, hi)
}

// Column is a dictionary-encoded, bit-packed column.
type Column = column.Column

// Paper figures. Each function runs the complete experiment at the
// given parameters and returns the series the paper plots.
var (
	// Fig1 is the teaser: OLTP isolated / concurrent / partitioned.
	Fig1 = harness.Fig1
	// Fig4 sweeps the column scan across LLC sizes.
	Fig4 = harness.Fig4
	// Fig5 sweeps aggregation across LLC sizes, dictionary sizes and
	// group counts.
	Fig5 = harness.Fig5
	// Fig6 sweeps the foreign-key join across LLC sizes and key counts.
	Fig6 = harness.Fig6
	// Fig9 co-runs scan and aggregation with and without partitioning.
	Fig9 = harness.Fig9
	// Fig10 co-runs aggregation and join under the 10% and 60% schemes.
	Fig10 = harness.Fig10
	// Fig11 co-runs each TPC-H query with the polluting scan.
	Fig11 = harness.Fig11
	// Fig12 co-runs the scan with the S/4HANA OLTP query.
	Fig12 = harness.Fig12
	// FigProjSweep is the Section VI-E projected-columns sweep.
	FigProjSweep = harness.FigProjSweep
	// FigAdapt co-runs scan and aggregation under no partitioning, the
	// static scheme and the online controller — annotated and blind —
	// with the default controller configuration; FigAdaptConfig takes
	// an explicit one.
	FigAdapt       = harness.FigAdapt
	FigAdaptConfig = harness.FigAdaptConfig
	// FigChaos sweeps control-plane fault rates over the partitioned
	// co-run: throughput vs. the fault-free baseline plus retry and
	// degradation counts; FigChaosRatesConfig takes an explicit rate
	// list.
	FigChaos            = harness.FigChaos
	FigChaosRatesConfig = harness.FigChaosRatesConfig
	// FigServe sweeps the open-loop serving tier across offered-load
	// multiples of estimated capacity, comparing shared-pool, the
	// paper's static scheme and the adaptive controller on tail
	// latency and fairness; FigServeOpts takes explicit options.
	FigServe     = harness.FigServe
	FigServeOpts = harness.FigServeOpts
	// FigOverload drives the serving tier past capacity with a rogue
	// polluting cohort and sweeps SLO-aware shedding policies against
	// the cache arms; FigOverloadOpts takes explicit options.
	FigOverload     = harness.FigOverload
	FigOverloadOpts = harness.FigOverloadOpts
	// ParseShedPolicy resolves a shedding policy by name (none, fair,
	// polluter).
	ParseShedPolicy = serve.ParseShedPolicy
)
