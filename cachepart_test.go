package cachepart

import (
	"testing"
)

func tinyParams() Params {
	p := FastParams()
	p.Scale = 64
	p.Cores = 8
	p.Duration = 0.002
	p.RowsScan = 1 << 20
	p.RowsAgg = 1 << 18
	p.RowsProbe = 1 << 18
	return p
}

func TestNewSystemFacade(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.Cores() != 8 {
		t.Errorf("cores = %d", sys.Machine.Cores())
	}
	if err := sys.SetPartitioning(true); err != nil {
		t.Fatal(err)
	}
	if !sys.Engine.Policy().Enabled {
		t.Error("partitioning not enabled")
	}
}

func TestQueriesThroughFacade(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewScanQuery(sys)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggQuery(sys, 10_000_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	join, err := NewJoinQuery(sys, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sys.SplitCores()
	m, err := sys.RunIsolated(scan, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Error("scan made no progress")
	}
	ma, mb, err := sys.RunPair(agg, a, join, b)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Throughput <= 0 || mb.Throughput <= 0 {
		t.Error("co-run made no progress")
	}
}

func TestTPCHFacade(t *testing.T) {
	p := tinyParams()
	p.RowsAgg = 40_000
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewTPCH(sys)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewTPCHQuery(sys, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.RunIsolated(q, sys.AllCores())
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Error("TPC-H Q1 made no progress")
	}
	if _, err := NewTPCHQuery(sys, db, 99); err == nil {
		t.Error("query 99 accepted")
	}
}

func TestACDOCAFacade(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	acdoca, err := NewACDOCA(sys, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	oltp, err := NewOLTPQuery(acdoca, 13)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.RunIsolated(oltp, sys.AllCores()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if m.Executions == 0 {
		t.Error("no OLTP executions")
	}
	// Clamping of the projection width.
	if _, err := NewOLTPQuery(acdoca, 99); err != nil {
		t.Errorf("clamped projection rejected: %v", err)
	}
	if _, err := NewOLTPQuery(acdoca, 0); err != nil {
		t.Errorf("clamped projection rejected: %v", err)
	}
}

func TestPolicyFacade(t *testing.T) {
	pol := DefaultPolicy(55<<20, 20)
	pol.Enabled = true
	if got := pol.MaskFor(Polluting, Footprint{}); got != 0x3 {
		t.Errorf("polluting mask = %v", got)
	}
	if got := pol.MaskFor(Sensitive, Footprint{}); got != 0xfffff {
		t.Errorf("sensitive mask = %v", got)
	}
	curve := []CurvePoint{{Ways: 1, Throughput: 1}, {Ways: 20, Throughput: 1}}
	cuid, err := ClassifyCurve(curve, 20)
	if err != nil || cuid != Polluting {
		t.Errorf("ClassifyCurve = %v, %v", cuid, err)
	}
	derived, err := DeriveScheme(55<<20, 20, [][]CurvePoint{curve})
	if err != nil {
		t.Fatal(err)
	}
	derived.Enabled = true
	if derived.MaskFor(Polluting, Footprint{}) != 0x3 {
		t.Error("derived scheme mask wrong")
	}
}

func TestGenerateColumn(t *testing.T) {
	sys, err := NewSystem(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	col, err := GenerateColumn(sys, "custom", 1000, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if col.Rows() != 1000 {
		t.Errorf("rows = %d", col.Rows())
	}
	for i := 0; i < 1000; i += 111 {
		if v := col.Value(i); v < 5 || v > 50 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

// TestSQLFacadeEndToEnd drives the paper's Figure 2/3 SQL through the
// facade: DDL, bulk load, planning with CUIDs, synchronous results,
// and an engine co-run where partitioning must help the aggregation.
func TestSQLFacadeEndToEnd(t *testing.T) {
	p := tinyParams()
	p.Duration = 0.003
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(sys)
	for _, ddl := range []string{
		"CREATE COLUMN TABLE A( X INT );",
		"CREATE COLUMN TABLE B( V INT, G INT );",
		"CREATE COLUMN TABLE R( P INT, PRIMARY KEY(P));",
		"CREATE COLUMN TABLE S( F INT );",
	} {
		if err := cat.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	scale := int64(p.Scale)
	rows := 1 << 19
	if err := cat.BulkUniform(sys.Rng, "A", rows, map[string][2]int64{"X": {1, 1_000_000 / scale}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.BulkUniform(sys.Rng, "B", rows, map[string][2]int64{
		"V": {1, 10_000_000 / scale}, "G": {1, 10_000 / scale},
	}); err != nil {
		t.Fatal(err)
	}
	keyRows := 4096
	if err := cat.BulkUniform(sys.Rng, "R", keyRows, map[string][2]int64{"P": {1, int64(keyRows)}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.BulkUniform(sys.Rng, "S", rows, map[string][2]int64{"F": {1, int64(keyRows)}}); err != nil {
		t.Fatal(err)
	}

	scan, err := PlanQuery(cat, "SELECT COUNT(*) FROM A WHERE A.X > ?;")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := PlanQuery(cat, "SELECT MAX(B.V), B.G FROM B GROUP BY B.G;")
	if err != nil {
		t.Fatal(err)
	}
	join, err := PlanQuery(cat, "SELECT COUNT(*) FROM R, S WHERE R.P = S.F;")
	if err != nil {
		t.Fatal(err)
	}
	if scan.CUID() != Polluting || agg.CUID() != Sensitive || join.CUID() != Depends {
		t.Errorf("CUIDs = %v %v %v", scan.CUID(), agg.CUID(), join.CUID())
	}
	// Synchronous join result: every FK matches a PK.
	if err := ExecutePlan(sys, join, 1); err != nil {
		t.Fatal(err)
	}
	if join.Count() != int64(rows) {
		t.Errorf("join count = %d, want %d", join.Count(), rows)
	}

	// Co-run via the engine: partitioning must improve the SQL-planned
	// aggregation.
	ca, cb := sys.SplitCores()
	iso, err := sys.RunIsolated(agg, cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(false); err != nil {
		t.Fatal(err)
	}
	_, shared, err := sys.RunPair(scan, ca, agg, cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPartitioning(true); err != nil {
		t.Fatal(err)
	}
	_, part, err := sys.RunPair(scan, ca, agg, cb)
	if err != nil {
		t.Fatal(err)
	}
	sh := shared.Throughput / iso.Throughput
	pt := part.Throughput / iso.Throughput
	if pt < sh*1.05 {
		t.Errorf("partitioning did not help SQL-planned aggregation: %.3f -> %.3f", sh, pt)
	}
}

func TestFig1Facade(t *testing.T) {
	p := tinyParams()
	r, err := Fig1(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Isolated != 1.0 {
		t.Errorf("isolated baseline = %v", r.Isolated)
	}
	if r.Concurrent <= 0 || r.Concurrent > 1.2 {
		t.Errorf("concurrent = %v", r.Concurrent)
	}
	if r.Partitioned < r.Concurrent {
		t.Errorf("partitioning regressed the OLTP query: %v -> %v", r.Concurrent, r.Partitioned)
	}
}
