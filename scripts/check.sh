#!/bin/sh
# check.sh — the repository's full verification gate: compile, vet,
# domain lint (cachelint), unit tests, and the race detector over the
# concurrent layers. Run from anywhere inside the module; CI and
# pre-merge reviews run exactly this.
#
# Usage: check.sh [lint|test|chaos|serve|overload|all]
#   lint     build + vet + cachelint (the CI lint job)
#   test     build + unit tests + race detector (the CI test job)
#   chaos    build + fault-injection/robustness tests under the race
#            detector (the CI chaos job)
#   serve    build + open-loop serving tier: queueing-theory sanity,
#            multi-seed bit-identity, worker invariance, chaos interop
#            and the FigServe acceptance sweep (the CI serve job)
#   overload build + SLO-aware overload control: deadlines, shedding,
#            breakers, retries, serving-plane chaos and the
#            FigOverload acceptance sweep (the CI overload job)
#   all      every gate, in order (the default)
set -eu

cd "$(dirname "$0")/.."

mode="${1:-all}"
case "$mode" in
lint | test | chaos | serve | overload | all) ;;
*)
	echo "check.sh: unknown mode '$mode' (want lint, test, chaos, serve, overload, or all)" >&2
	exit 2
	;;
esac

echo '== go build ./...'
go build ./...

if [ "$mode" = lint ] || [ "$mode" = all ]; then
	echo '== go vet ./...'
	go vet ./...

	# The concurrency-isolation tier alone first: a clean epoch-
	# ownership report is a standalone invariant, independent of the
	# baseline used below.
	echo '== go run ./cmd/cachelint -tier=conc ./...'
	go run ./cmd/cachelint -tier=conc ./...

	# All four tiers (intra, inter, perf, conc) against the checked-in
	# baseline of accepted findings.
	echo '== go run ./cmd/cachelint -baseline .cachelint-baseline.jsonl ./...'
	go run ./cmd/cachelint -baseline .cachelint-baseline.jsonl ./...
fi

if [ "$mode" = test ] || [ "$mode" = all ]; then
	echo '== go test ./...'
	go test ./...

	echo '== go test -race (engine, cachesim, exec)'
	go test -race ./internal/engine/... ./internal/cachesim/... ./internal/exec/...

	echo '== go test -race (harness parallel-mode equivalence)'
	go test -race -run 'Parallel' ./internal/harness/...
fi

if [ "$mode" = serve ] || [ "$mode" = all ]; then
	echo '== go test (serving tier: generator, admission, dispatch, M/M/1)'
	go test ./internal/serve/... ./internal/engine/ -run 'Serve|Arrival|MM1|Admission|TokenBucket|Discipline|OpenLoop|StreamQueryStamps'

	echo '== go test (FigServe sweep: acceptance, determinism, chaos interop)'
	go test -run 'FigServe' ./internal/harness/...
fi

if [ "$mode" = overload ] || [ "$mode" = all ]; then
	echo '== go test (overload control: deadlines, shedding, breakers, retries, serve-plane chaos)'
	go test ./internal/serve/... ./internal/fault/... \
		-run 'Overload|Deadline|Shed|Breaker|RetryBudget|Burst|ServePlane|ServeConfig|UniformServe'

	echo '== go test (FigOverload sweep: acceptance, chaos replay, worker invariance)'
	go test -run 'FigOverload' ./internal/harness/...
fi

if [ "$mode" = chaos ] || [ "$mode" = all ]; then
	echo '== go test -race (fault injection, degraded mode, telemetry gaps)'
	go test -race -run 'Fault|Chaos|Gap|Degrad|ErrorPath|Retry' \
		./internal/fault/... ./internal/engine/... ./internal/adapt/... \
		./internal/resctrl/... ./internal/harness/...
fi

echo "check.sh: $mode gate(s) passed"
