#!/bin/sh
# check.sh — the repository's full verification gate: compile, vet,
# domain lint (cachelint), unit tests, and the race detector over the
# concurrent layers. Run from anywhere inside the module; CI and
# pre-merge reviews run exactly this.
set -eu

cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== go run ./cmd/cachelint ./...'
go run ./cmd/cachelint ./...

echo '== go test ./...'
go test ./...

echo '== go test -race (engine, cachesim)'
go test -race ./internal/engine/... ./internal/cachesim/...

echo 'check.sh: all gates passed'
