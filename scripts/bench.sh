#!/bin/sh
# bench.sh — measures the epoch-parallel simulation mode (DESIGN.md
# §11) against the serial reference, the batched access fast path
# against the per-call loop, one full open-loop serving sweep
# (DESIGN.md §13) and one SLO-aware overload point (DESIGN.md §15),
# then writes the results as BENCH_9.json
# (format documented in EXPERIMENTS.md). After writing, the fresh run
# is compared against the most recent committed BENCH_*.json and a
# per-benchmark delta table is printed — regressions warn, they do not
# fail, because ns/op across different hosts is not comparable.
#
# Usage: bench.sh [output.json]
#
# The figure-level pairs (Fig 9 scan∥aggregation, Fig 11 scan∥TPC-H)
# run the whole experiment per iteration; the simulator benches measure
# the raw per-access cost. Parallel-mode speedup needs host cores to
# spread over: the JSON records the host core count so a 1-core result
# is read as what it is.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_9.json}"
cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

echo "== go test -bench (figure co-runs, serial vs parallel)" >&2
fig="$(go test -run '^$' -bench 'Fig9$|Fig9Parallel$|Fig11$|Fig11Parallel$' -benchtime 2x .)"
echo "$fig" >&2

echo "== go test -bench (simulator access, loop vs batch)" >&2
acc="$(go test -run '^$' -bench 'SimulatorAccess$|SimulatorAccessBatch$' -benchtime 2000000x .)"
echo "$acc" >&2

echo "== go test -bench (open-loop serving sweep at 1.0x)" >&2
srv="$(go test -run '^$' -bench 'BenchmarkServe$' -benchtime 2x .)"
echo "$srv" >&2

echo "== go test -bench (overload control at 3x rogue polluter)" >&2
ovl="$(go test -run '^$' -bench 'BenchmarkOverload$' -benchtime 2x .)"
echo "$ovl" >&2

printf '%s\n%s\n%s\n%s\n' "$fig" "$acc" "$srv" "$ovl" | awk -v cores="$cores" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") {
			ns[name] = $(i - 1)
		}
	}
}
END {
	printf "{\n"
	printf "  \"bench\": \"overload — SLO-aware overload control plus the serving sweep and the epoch-parallel and batched-access fast paths\",\n"
	printf "  \"host_cores\": %d,\n", cores
	printf "  \"ns_per_op\": {\n"
	n = 0
	for (k in ns) order[n++] = k
	# Fixed emission order keeps the file diffable run to run.
	split("BenchmarkFig9 BenchmarkFig9Parallel BenchmarkFig11 BenchmarkFig11Parallel BenchmarkSimulatorAccess BenchmarkSimulatorAccessBatch BenchmarkServe BenchmarkOverload", want, " ")
	first = 1
	for (i = 1; i <= 8; i++) {
		k = want[i]
		if (!(k in ns)) continue
		if (!first) printf ",\n"
		printf "    \"%s\": %s", k, ns[k]
		first = 0
	}
	printf "\n  },\n"
	printf "  \"speedup\": {\n"
	printf "    \"fig9_parallel_over_serial\": %.3f,\n", ns["BenchmarkFig9"] / ns["BenchmarkFig9Parallel"]
	printf "    \"fig11_parallel_over_serial\": %.3f,\n", ns["BenchmarkFig11"] / ns["BenchmarkFig11Parallel"]
	printf "    \"access_batch_over_loop\": %.3f\n", ns["BenchmarkSimulatorAccess"] / ns["BenchmarkSimulatorAccessBatch"]
	printf "  },\n"
	if (cores < 4) {
		printf "  \"note\": \"host has %d core(s); the parallel mode needs >=4 host cores to show its speedup — rerun there for the headline number\"\n", cores
	} else {
		printf "  \"note\": \"parallel-mode results are bit-identical to Workers=1 (see TestParallelWorkerEquivalenceFig9)\"\n"
	}
	printf "}\n"
}' >"$out"

echo "bench.sh: wrote $out" >&2
cat "$out"

# Per-benchmark comparison against the most recent other BENCH_*.json
# (version-sorted), if one is committed.
prev=""
for f in $(ls BENCH_*.json 2>/dev/null | sort -V); do
	[ "$f" = "$out" ] && continue
	prev="$f"
done
if [ -n "$prev" ]; then
	echo "== delta vs $prev (ns/op; negative is faster, >5% slower warns)" >&2
	awk -v prevfile="$prev" -v curfile="$out" '
	function load(file, arr,    line, k, v) {
		while ((getline line < file) > 0) {
			if (line ~ /"Benchmark[A-Za-z0-9]+":/) {
				k = line
				sub(/^[ \t]*"/, "", k)
				sub(/".*$/, "", k)
				v = line
				sub(/^[^:]*:[ \t]*/, "", v)
				sub(/[,\r \t]*$/, "", v)
				arr[k] = v + 0
			}
		}
		close(file)
	}
	BEGIN {
		load(prevfile, old)
		load(curfile, cur)
		split("BenchmarkFig9 BenchmarkFig9Parallel BenchmarkFig11 BenchmarkFig11Parallel BenchmarkSimulatorAccess BenchmarkSimulatorAccessBatch BenchmarkServe BenchmarkOverload", want, " ")
		printf "%-30s %14s %14s %9s\n", "benchmark", "prev", "cur", "delta"
		for (i = 1; i <= 8; i++) {
			k = want[i]
			if (!(k in cur) || !(k in old) || old[k] == 0) continue
			d = (cur[k] - old[k]) / old[k] * 100
			flag = (d > 5) ? "  WARN: slower than " prevfile : ""
			printf "%-30s %14.0f %14.0f %+8.1f%%%s\n", k, old[k], cur[k], d, flag
		}
	}' >&2
fi
