module cachepart

go 1.24
